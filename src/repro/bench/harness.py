"""Deployment builder and simulation drivers for experiments.

Mirrors the paper's testbed (§5): the Wiera service + Zookeeper on one
host in US East, one Tiera server per requested (region, provider) on
t2.micro-class hosts, and clients wherever the experiment places them.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Generator, Iterable, Optional, Sequence

from repro.autoscale.controller import Autoscaler
from repro.autoscale.signals import SignalReader
from repro.core.client import WieraClient
from repro.core.global_policy import (AutoscaleSpec, GlobalPolicySpec,
                                      RedundancySpec)
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule
from repro.core.wiera import WieraService
from repro.load.cohort import ClientCohort, CohortSpec
from repro.load.engine import LoadEngine
from repro.net.network import Network
from repro.net.topology import US_EAST, Topology
from repro.obs.api import Observability, get_obs
from repro.shard.map import ShardHandle
from repro.shard.ring import DEFAULT_VNODES
from repro.shard.router import ShardRouter
from repro.sim.kernel import Simulator
from repro.storage.cost import CostLedger
from repro.tiera.objects import ObjectRecord, VersionMeta, storage_key
from repro.tiera.server import TieraServer
from repro.util.rng import RngRegistry


@dataclass
class Deployment:
    """One fully wired simulated testbed."""

    sim: Simulator
    network: Network
    rng: RngRegistry
    wiera: WieraService
    servers: dict = field(default_factory=dict)   # (region, provider) -> TieraServer
    ledger: Optional[CostLedger] = None
    clients: dict = field(default_factory=dict)
    obs: Optional[Observability] = None
    faults: Optional[FaultSchedule] = None
    #: default shard count for start_sharded_instance (1 = unsharded)
    shards: int = 1
    #: open-loop cohorts, created lazily by add_cohort (None = unused,
    #: and the deployment is bit-identical to pre-load-engine builds)
    load: Optional[LoadEngine] = None
    #: default autoscale spec for start_sharded_instance (None = no
    #: controller, bit-identical to pre-autoscale builds)
    autoscale: Optional[AutoscaleSpec] = None
    #: running controllers by namespace (base wiera id)
    autoscalers: dict = field(default_factory=dict)
    #: default redundancy spec applied to specs that don't set their own
    #: (None = no EC plane, bit-identical to pre-EC builds)
    redundancy: Optional[RedundancySpec] = None
    #: intended execution parallelism recorded by build_deployment
    #: (``workers=N``); construction itself is identical for any value —
    #: repro.par reads it as the default worker count when the deployment
    #: is run partitioned, and 1 means plain single-process execution
    workers: int = 1
    #: the region list the deployment was built with, in declaration
    #: order — the partition planner groups these deterministically
    regions: tuple = ()

    # -- driving -------------------------------------------------------------
    def drive(self, gen: Generator, name: str = "main"):
        """Run a coroutine to completion (background processes keep going)."""
        return drive(self.sim, gen, name=name)

    def _apply_redundancy(self, spec: GlobalPolicySpec) -> GlobalPolicySpec:
        if self.redundancy is None or spec.redundancy is not None:
            return spec
        return dataclasses.replace(spec, redundancy=self.redundancy)

    def start_wiera_instance(self, wiera_id: str,
                             spec: GlobalPolicySpec) -> list[dict]:
        spec = self._apply_redundancy(spec)
        return self.drive(self.wiera.start_instances(wiera_id, spec),
                          name=f"start:{wiera_id}")

    def start_sharded_instance(self, wiera_id: str,
                               spec: GlobalPolicySpec,
                               autoscale: Optional[AutoscaleSpec] = None,
                               ) -> ShardHandle:
        """Start one namespace across N shards (repro.shard).

        The shard count comes from ``spec.sharding`` when set, else the
        deployment default (``build_deployment(shards=N)``).  With one
        shard this delegates to :meth:`start_wiera_instance` — no
        manager, no guards, no router — so ``shards=1`` runs are
        bit-identical to pre-sharding behavior.

        An autoscale spec (the ``autoscale`` argument, else
        ``spec.autoscale``, else the deployment default) attaches an
        :class:`~repro.autoscale.controller.Autoscaler` to the
        namespace.  Autoscaled namespaces always take the managed
        ShardManager path — even at one shard — because the shard lever
        needs a manager to actuate; with no spec anywhere (the default)
        nothing changes.
        """
        spec = self._apply_redundancy(spec)
        sharding = spec.sharding
        n = sharding.shards if sharding is not None else self.shards
        vnodes = sharding.vnodes if sharding is not None else DEFAULT_VNODES
        aspec = autoscale or spec.autoscale or self.autoscale
        if n <= 1 and aspec is None:
            instances = self.start_wiera_instance(wiera_id, spec)
            return ShardHandle(base_id=wiera_id, instances=instances)
        shard_map = self.drive(
            self.wiera.start_sharded_instances(wiera_id, spec, n,
                                               vnodes=vnodes),
            name=f"start:{wiera_id}")
        if aspec is not None:
            self._attach_autoscaler(wiera_id, aspec)
        return ShardHandle(base_id=wiera_id,
                           instances=shard_map.all_instances(),
                           map=shard_map)

    def _attach_autoscaler(self, base_id: str,
                           aspec: AutoscaleSpec) -> Autoscaler:
        """Build, start, and register the controller for one namespace."""
        manager = self.wiera.shard_manager(base_id)

        def hosts():
            seen = []
            for sid in sorted(manager.map.shards):
                for rec in self.wiera.tim(sid).alive_records():
                    seen.append(rec.instance.host)
            return seen

        reader = SignalReader(self.obs.metrics,
                              engine_provider=lambda: self.load,
                              hosts_provider=hosts)
        scaler = Autoscaler(manager, aspec, reader)
        scaler.start()
        self.autoscalers[base_id] = scaler
        return scaler

    # -- construction helpers ----------------------------------------------------
    def add_client(self, region: str, provider: str = "aws",
                   vm: str = "generic", name: Optional[str] = None,
                   instances: Optional[list[dict]] = None,
                   request_timeout: Optional[float] = None,
                   retry_policy: Optional[RetryPolicy] = None,
                   sharded: Optional[ShardHandle] = None) -> WieraClient:
        cname = name or f"client-{region}-{len(self.clients)}"
        host = self.network.add_host(cname, region, provider, vm)
        client = WieraClient(self.sim, self.network, host, name=cname,
                             request_timeout=request_timeout,
                             retry_policy=retry_policy,
                             rng=self.rng.stream(f"{cname}.retry"))
        if sharded is not None and instances is None:
            instances = sharded.instances
        if instances is not None:
            client.attach(instances)
        if sharded is not None and sharded.map is not None:
            router = ShardRouter(client, self.wiera.node, sharded.base_id)
            router.install(sharded.map)
            client.router = router
        self.clients[cname] = client
        return client

    def add_cohort(self, spec: CohortSpec,
                   instances: Optional[list[dict]] = None,
                   sharded: Optional[ShardHandle] = None,
                   provider: str = "aws", vm: str = "generic",
                   request_timeout: Optional[float] = None,
                   retry_policy: Optional[RetryPolicy] = None) -> ClientCohort:
        """Stand up one open-loop client cohort (see :mod:`repro.load`).

        Creates the cohort's shared router/connection-pool client in
        ``spec.region`` (attached to ``instances`` or a ``sharded``
        handle, exactly like :meth:`add_client`), registers the cohort
        with the deployment's :class:`~repro.load.engine.LoadEngine`
        (created on first use), and returns it un-started — call
        ``dep.load.run(duration)`` or ``cohort.start()`` yourself.
        """
        if self.load is None:
            self.load = LoadEngine(self.sim)
        client = self.add_client(
            spec.region, provider=provider, vm=vm,
            name=f"cohort-{spec.name}", instances=instances,
            request_timeout=request_timeout, retry_policy=retry_policy,
            sharded=sharded)
        rng = self.rng.substream("load.cohort", spec.name)
        return self.load.add(ClientCohort(self.sim, client, spec, rng))

    def add_scenario(self, scenario, **cohort_kw) -> LoadEngine:
        """Instantiate every cohort of a :class:`~repro.load.scenarios.
        Scenario` (plus its fault schedule, if it has one) and return
        the load engine.  ``cohort_kw`` is passed to each
        :meth:`add_cohort` call (``instances=...`` / ``sharded=...``)."""
        for spec in scenario.specs:
            self.add_cohort(spec, **cohort_kw)
        if scenario.faults is not None:
            scenario.faults(self)
        return self.load

    def metric_total(self, name: str, **labels) -> float:
        """Sum every counter/gauge called ``name`` whose labels include
        ``labels`` — e.g. total send failures across all instances."""
        want = set(labels.items())
        total = 0
        for metric in self.obs.metrics:
            if (metric.name == name and metric.kind in ("counter", "gauge")
                    and want <= set(metric.labels)):
                total += metric.value
        return total

    def fault_schedule(self, name: str = "faults") -> FaultSchedule:
        """A FaultSchedule wired to this deployment's network and servers
        (crashing a server host wipes volatile tiers, like a real crash)."""
        schedule = FaultSchedule(self.sim, self.network,
                                 servers=self.servers.values(), name=name)
        self.faults = schedule
        return schedule

    # -- canonical store state -------------------------------------------------
    def store_rows(self, namespaces: Optional[Sequence[str]] = None,
                   detail: bool = False,
                   host_filter=None) -> list[str]:
        """Canonical rows of per-instance key state, in zero sim-time.

        One row per (namespace, instance, key):
        ``{ns}/{iid}/{key}=v{latest}`` — the historical golden-fixture
        format — plus, with ``detail=True``,
        ``@{last_modified}:{origin}:{size}`` of the latest version, which
        distinguishes same-version contents rewritten by LWW.
        ``namespaces`` defaults to every running namespace (sorted);
        ``host_filter(host) -> bool`` restricts rows to instances on
        matching hosts (how a parallel worker reports only the partition
        it owns).
        """
        if namespaces is None:
            namespaces = sorted(self.wiera.tims)
        rows = []
        for ns in namespaces:
            tim = self.wiera.tim(ns)
            for iid in sorted(tim.instances):
                inst = tim.instances[iid].instance
                if host_filter is not None and not host_filter(inst.host):
                    continue
                for record in sorted(inst.meta.records(),
                                     key=lambda r: r.key):
                    row = f"{ns}/{iid}/{record.key}=v{record.latest_version}"
                    if detail:
                        meta = record.latest()
                        if meta is not None:
                            row += (f"@{meta.last_modified!r}"
                                    f":{meta.origin}:{meta.size}")
                    rows.append(row)
        return rows

    def store_digest(self, namespaces: Optional[Sequence[str]] = None,
                     detail: bool = True, sort: bool = True) -> str:
        """Stable hash over every instance's key -> version/value state.

        The canonical equivalence digest: two runs (or a single-process
        run and a merged parallel run) converged to the same stores iff
        their digests match.  ``sort=True`` (default) hashes the rows in
        sorted order, so digests of per-worker row subsets can be
        recombined with :func:`rows_digest`; the golden fixture pins the
        historical un-sorted nested order via ``sort=False``.
        """
        return rows_digest(self.store_rows(namespaces=namespaces,
                                           detail=detail), sort=sort)

    def server(self, region: str, provider: str = "aws") -> TieraServer:
        return self.servers[(region, provider)]

    def tim(self, wiera_id: str):
        return self.wiera.tim(wiera_id)

    def instance(self, wiera_id: str, region: str, provider: str = "aws"):
        """The in-proc TieraInstance handle for (wiera instance, region)."""
        for rec in self.tim(wiera_id).instances.values():
            if rec.region == region and rec.provider == provider and not rec.down:
                return rec.instance
        raise KeyError(f"no live instance of {wiera_id} in {region}/{provider}")


def rows_digest(rows: Sequence[str], sort: bool = True) -> str:
    """sha256 of store-state rows (see :meth:`Deployment.store_rows`).

    With ``sort=True`` the digest is invariant to how rows were gathered,
    so the union of per-worker row subsets hashes identically to one
    whole-deployment walk.
    """
    if sort:
        rows = sorted(rows)
    return hashlib.sha256("\n".join(rows).encode()).hexdigest()


def drive(sim: Simulator, gen: Generator, name: str = "main"):
    """Run ``gen`` as a process until it finishes; re-raise its failure."""
    proc = sim.process(gen, name=name)
    return sim.run(until=proc)


def build_deployment(regions: Sequence[str],
                     providers: Optional[dict[str, Iterable[str]]] = None,
                     seed: int = 0,
                     wiera_region: str = US_EAST,
                     server_vm: str = "aws.t2_micro",
                     topology: Optional[Topology] = None,
                     with_ledger: bool = False,
                     heartbeat_interval: float = 5.0,
                     with_tracing: bool = False,
                     shards: int = 1,
                     chunk_bytes: float = 0.0,
                     servers_per_region: int = 1,
                     autoscale: Optional[AutoscaleSpec] = None,
                     redundancy: Optional[RedundancySpec] = None,
                     workers: int = 1,
                     ) -> Deployment:
    """Stand up Wiera + one Tiera server per (region, provider).

    ``providers`` maps region -> iterable of providers (default: aws only).
    The Wiera service and its Zookeeper co-tenant live in ``wiera_region``.
    Tiera servers are registered with the TSM and heartbeats started.
    ``with_tracing`` turns on span recording (metrics are always live);
    the Chrome trace can then be dumped via
    :func:`repro.bench.reporting.dump_observability`.
    ``shards`` sets the default partition count used by
    :meth:`Deployment.start_sharded_instance`; the default of 1 keeps
    every deployment unsharded and bit-identical to pre-shard behavior.
    ``chunk_bytes`` enables chunked WAN transfers (see
    :meth:`repro.net.network.Network.transmit`); 0 keeps transfers as a
    single indivisible egress reservation.
    ``servers_per_region`` stands up N Tiera servers (N hosts, N egress
    links) per (region, provider) instead of one, so shard placements
    spread across real capacity — the TSM picks the least-loaded server
    per placement.  The default of 1 keeps host names and registration
    order identical to older builds.
    ``autoscale`` sets the default :class:`~repro.core.global_policy.
    AutoscaleSpec` attached by :meth:`Deployment.start_sharded_instance`;
    None (the default) builds no controller and keeps runs bit-identical.
    ``redundancy`` sets the default :class:`~repro.core.global_policy.
    RedundancySpec` applied to started specs that don't carry their own
    (the erasure-coded plane, repro.ec); None (the default) constructs
    nothing and keeps runs bit-identical.
    ``workers`` records the intended execution parallelism for
    :func:`repro.par.run_parallel` (region groups, one Simulator per
    worker process).  Construction never depends on it — a ``workers=N``
    deployment run in-process is bit-identical to ``workers=1`` — but it
    is validated here: at most one worker per region.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if workers > len(set(regions)):
        raise ValueError(
            f"workers={workers} exceeds the {len(set(regions))} region "
            f"group(s) available to partition")
    sim = Simulator()
    obs = get_obs(sim)
    if with_tracing:
        obs.enable_tracing()
    network = Network(sim, topology, chunk_bytes=chunk_bytes)
    rng = RngRegistry(seed)
    ledger = CostLedger(sim) if with_ledger else None
    network.ledger = ledger
    wiera = WieraService(sim, network, region=wiera_region,
                         heartbeat_interval=heartbeat_interval)
    dep = Deployment(sim=sim, network=network, rng=rng, wiera=wiera,
                     ledger=ledger, obs=obs, shards=shards,
                     autoscale=autoscale, redundancy=redundancy,
                     workers=workers, regions=tuple(regions))
    if servers_per_region < 1:
        raise ValueError(f"servers_per_region must be >= 1: "
                         f"{servers_per_region}")
    server_seq = 0
    for region in regions:
        for provider in (providers or {}).get(region, ("aws",)):
            vm = server_vm
            for i in range(servers_per_region):
                # The first server keeps the historical host name and
                # (region, provider) key, so servers_per_region=1 is
                # bit-identical to older deployments.
                suffix = "" if i == 0 else f"-{i}"
                host = network.add_host(
                    f"tsrv-host-{region}-{provider}{suffix}",
                    region, provider, vm)
                # Deployment-scoped ids reproducing the historical
                # first-build-in-process numbering: two identical builds
                # (in one process or in forked workers) get identical
                # server ids, hence identical pick_server tie-breaks.
                server_seq += 1
                server = TieraServer(sim, network, host, region, provider,
                                     rng=rng, ledger=ledger,
                                     server_id=f"tsrv-{region}-{server_seq}")
                key = ((region, provider) if i == 0
                       else (region, provider, i))
                dep.servers[key] = server
    drive(sim, wiera.register_servers(list(dep.servers.values())),
          name="bootstrap")
    return dep


def preload_object(instances, key: str, data: bytes, tier: str | None = None,
                   version: int = 1, now: float = 0.0) -> None:
    """Zero-time setup: install ``key`` (one version) into each instance.

    Creates the metadata record and places the bytes on ``tier`` (default:
    the policy's default store tier).  Used to materialize large prepared
    datasets — the SysBench file, the RUBiS database, the 10 TB cold-data
    population — without simulating the load phase.
    """
    for instance in instances:
        record = instance.meta.get_record(key)
        if record is None:
            record = ObjectRecord(key=key)
            instance.meta.put_record(record)
        if version in record.versions:
            raise ValueError(f"{key!r} v{version} already present in "
                             f"{instance.instance_id}")
        target = tier or instance.policy.default_store_tier()
        meta = VersionMeta(version=version, size=len(data), created_at=now,
                           last_modified=now, last_accessed=now,
                           origin=instance.instance_id,
                           locations={target}, stored_size=len(data))
        record.add_version(meta)
        instance.tier(target).preload(storage_key(key, version), data)
