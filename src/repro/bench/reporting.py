"""Paper-vs-measured experiment reports.

Every benchmark builds an :class:`ExperimentReport` with the series/rows
the paper's table or figure shows, the paper's claim, and what we
measured.  Reports are registered in a process-global list; the benchmark
suite's conftest prints them in the pytest terminal summary, and
``dump_reports`` writes them under ``results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional


@dataclass
class ExperimentReport:
    exp_id: str                 # e.g. "fig7", "table3"
    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    paper_claim: str = ""
    notes: str = ""

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.exp_id}: row has {len(values)} values for "
                f"{len(self.columns)} columns")
        self.rows.append(list(values))

    def render(self) -> str:
        cells = [[str(c) for c in self.columns]]
        for row in self.rows:
            cells.append([_fmt(v) for v in row])
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.columns))]
        sep = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.exp_id}: {self.title} =="]
        if self.paper_claim:
            lines.append(f"paper: {self.paper_claim}")
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
        lines.append(sep)
        for row in cells[1:]:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


_REGISTRY: list[ExperimentReport] = []


def register_report(report: ExperimentReport) -> ExperimentReport:
    _REGISTRY.append(report)
    return report


def all_reports() -> list[ExperimentReport]:
    return list(_REGISTRY)


def clear_reports() -> None:
    _REGISTRY.clear()


def render_all() -> str:
    return "\n\n".join(r.render() for r in _REGISTRY)


def dump_reports(directory: str | Path) -> Optional[Path]:
    if not _REGISTRY:
        return None
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    for report in _REGISTRY:
        (out / f"{report.exp_id}.txt").write_text(report.render() + "\n")
    combined = out / "all_experiments.txt"
    combined.write_text(render_all() + "\n")
    return combined


def dump_observability(obs, directory: str | Path,
                       stem: str = "run") -> list[Path]:
    """Export one run's observability: Chrome trace + metrics snapshot.

    Writes ``{stem}_metrics.json`` always, and ``{stem}_trace.json``
    (chrome://tracing / Perfetto ``trace_event`` format) when the run
    recorded spans.  Returns the written paths.
    """
    from repro.obs.export import write_chrome_trace, write_metrics

    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    metrics_path = out / f"{stem}_metrics.json"
    write_metrics(obs.metrics, metrics_path)
    written.append(metrics_path)
    spans = getattr(obs.tracer, "spans", None)
    if spans:
        trace_path = out / f"{stem}_trace.json"
        write_chrome_trace(obs.tracer, trace_path)
        written.append(trace_path)
    return written
