"""Shared open-loop scale-out measurement cell.

Both ``benchmarks/bench_shard_scaleout.py`` and
``benchmarks/bench_load_engine.py`` measure the same thing — what a
sharded deployment *absorbs* under a configured offered load — so the
cell lives here: build a deployment with one Tiera host per shard per
region (``servers_per_region=shards``, so shards get real capacity
instead of stacking on one egress link), preload the record space in
zero sim-time, drive it with one open-loop cohort per region, and report
offered vs achieved rate with typed errors and tail latencies.

The cell uses eventual consistency and a uniform read-mostly workload:
reads are served by the local replica of the owning shard, so the
binding resource is per-host egress bandwidth and capacity genuinely
grows with the shard count — the property the scale-out benchmarks
gate on.  (Closed-loop results against multi-primaries measured lock
acquisition instead, which no amount of sharding helps.)
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.bench.harness import Deployment, build_deployment, preload_object
from repro.core.global_policy import GlobalPolicySpec, RegionPlacement
from repro.load.arrivals import constant_rate
from repro.load.cohort import CohortSpec
from repro.net.topology import ASIA_EAST, EU_WEST, US_EAST, US_WEST
from repro.tiera.policy import memory_only_policy
from repro.workloads.ycsb import YcsbWorkload

REGIONS = (US_EAST, US_WEST)

#: the parallel-execution cell spans every topology region, so a
#: 4-worker run gets one region group per worker
PAR_REGIONS = (US_EAST, US_WEST, EU_WEST, ASIA_EAST)


def scaleout_workload(record_count: int = 200,
                      value_size: int = 65536) -> YcsbWorkload:
    """Read-mostly (95/5), uniform keys, 64 KB values: big enough that
    per-host egress is the binding resource, uniform so every shard
    carries an equal slice."""
    return YcsbWorkload.workload_b(record_count=record_count,
                                   value_size=value_size,
                                   distribution="uniform")


def shard_instances(dep: Deployment, handle, key: str) -> list:
    """In-proc TieraInstance handles holding ``key`` (for preloading)."""
    owner = handle.base_id if handle.map is None else handle.map.owner(key)
    return [rec.instance for rec in dep.tim(owner).instances.values()
            if not rec.down]


def preload_records(dep: Deployment, handle, workload: YcsbWorkload) -> None:
    """Install the whole record space in zero sim-time (no load phase)."""
    data = bytes(workload.value_size)
    for i in range(workload.record_count):
        key = workload.key(i)
        preload_object(shard_instances(dep, handle, key), key, data)


def build_scaleout_deployment(shards: int, seed: int = 11,
                              regions: Sequence[str] = REGIONS,
                              workload: Optional[YcsbWorkload] = None,
                              workers: int = 1):
    """Deployment + preloaded sharded namespace for one cell."""
    workload = workload or scaleout_workload()
    dep = build_deployment(list(regions), seed=seed, shards=shards,
                           servers_per_region=shards, workers=workers)
    spec = GlobalPolicySpec(
        name="scale",
        placements=tuple(RegionPlacement(region, memory_only_policy())
                         for region in regions),
        consistency="eventual")
    handle = dep.start_sharded_instance("scale", spec)
    preload_records(dep, handle, workload)
    return dep, handle, workload


def parallel_cell_builder(shards: int = 8, offered_total: float = 4000.0,
                          seed: int = 11,
                          regions: Sequence[str] = PAR_REGIONS,
                          workers: int = 4,
                          workload: Optional[YcsbWorkload] = None,
                          max_in_flight: int = 128, queue_limit: int = 512):
    """A ``build()`` callable for :func:`repro.par.run_parallel`.

    Constructs the standard open-loop scale-out cell — sharded namespace
    replicated across ``regions``, preloaded record space, one open-loop
    cohort per region — without starting the load, which is exactly the
    contract ``run_parallel`` expects.  The same builder drives both the
    single-process reference run and the partitioned run, so their
    deployments are construction-identical.
    """
    def build():
        dep, handle, wl = build_scaleout_deployment(
            shards, seed=seed, regions=regions,
            workload=workload or scaleout_workload(), workers=workers)
        per_region = offered_total / len(regions)
        for region in regions:
            rate_fn, peak = constant_rate(per_region)
            dep.add_cohort(
                CohortSpec(name=f"ol-{region}", region=region,
                           users=max(1, round(per_region * 10)),
                           rate_per_user=0.1, workload=wl,
                           rate_fn=rate_fn, peak_rate=peak,
                           max_in_flight=max_in_flight,
                           queue_limit=queue_limit),
                sharded=handle)
        return dep
    return build


def run_scaleout_cell(shards: int, offered_total: float, duration: float,
                      seed: int = 11, regions: Sequence[str] = REGIONS,
                      workload: Optional[YcsbWorkload] = None,
                      max_in_flight: int = 128, queue_limit: int = 512,
                      grace: float = 1.0) -> dict:
    """One (shard count, offered load) measurement.

    ``offered_total`` ops/sec are split evenly across one cohort per
    region; each cohort is bounded by ``max_in_flight`` pooled
    connections and a ``queue_limit``-deep wait queue, so saturation
    shows up as queueing delay and shed load, not as an unbounded
    simulation.
    """
    workload = workload or scaleout_workload()
    dep, handle, workload = build_scaleout_deployment(
        shards, seed=seed, regions=regions, workload=workload)
    per_region = offered_total / len(regions)
    for region in regions:
        rate_fn, peak = constant_rate(per_region)
        dep.add_cohort(
            CohortSpec(name=f"ol-{region}", region=region,
                       users=max(1, round(per_region * 10)),
                       rate_per_user=0.1, workload=workload,
                       rate_fn=rate_fn, peak_rate=peak,
                       max_in_flight=max_in_flight,
                       queue_limit=queue_limit),
            sharded=handle)

    started_wall = time.perf_counter()
    started_sim = dep.sim.now
    started_events = dep.sim.events_processed
    report = dep.load.run(duration, grace=grace)
    wall = time.perf_counter() - started_wall
    events = dep.sim.events_processed - started_events
    sim_elapsed = dep.sim.now - started_sim

    def tail(metric: str, stat: str) -> float:
        return max((c[metric][stat] if metric != "latency"
                    else c["latency"]["get"][stat])
                   for c in report["per_cohort"])

    achieved = report["achieved"]
    return {
        "shards": shards,
        "offered_per_sec": offered_total,
        "offered": report["offered"],
        "achieved": achieved,
        "offered_rate": round(report["offered_rate"], 3),
        "achieved_per_sim_sec": round(report["achieved_rate"], 3),
        "errors": report["errors"],
        "errors_by_type": report["errors_by_type"],
        "shed": report["shed"],
        "get_p50_ms": round(tail("latency", "p50") * 1000, 3),
        "get_p95_ms": round(tail("latency", "p95") * 1000, 3),
        "queue_delay_p95_ms": round(tail("queue_delay", "p95") * 1000, 3),
        "duration_sim_sec": duration,
        "sim_seconds": round(sim_elapsed, 6),
        "kernel_events": events,
        "events_per_achieved_op": round(events / achieved, 1) if achieved
        else None,
        "wall_seconds": round(wall, 4),
    }
