"""Benchmark/experiment harness.

:mod:`repro.bench.harness` stands up complete simulated deployments
(network + Wiera + Tiera servers + clients) in a couple of lines;
:mod:`repro.bench.reporting` renders paper-vs-measured tables and collects
them for the pytest terminal summary.
"""

from repro.bench.harness import (
    Deployment,
    build_deployment,
    drive,
    preload_object,
)
from repro.bench.reporting import ExperimentReport, register_report, render_all

__all__ = [
    "Deployment",
    "build_deployment",
    "drive",
    "preload_object",
    "ExperimentReport",
    "register_report",
    "render_all",
]
