"""Mini page-based relational store (the MySQL stand-in for RUBiS).

A deliberately small but real database engine: fixed-size rows packed into
fixed-size pages on a :class:`~repro.fs.device.BlockFile`, a bounded LRU
buffer pool (the paper shrinks MySQL's buffer to its 16 MB minimum and
sets O_DIRECT, so most row accesses hit the device — we reproduce exactly
that regime), and write-through page updates.
"""

from repro.db.minidb import MiniDB, Table, DbError

__all__ = ["MiniDB", "Table", "DbError"]
