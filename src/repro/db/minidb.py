"""Page-based storage engine with an LRU buffer pool.

Layout: the block file is divided among tables at creation; table ``T``
with ``row_size`` bytes/row stores ``page_size // row_size`` rows per page
in its block range.  ``read_row`` consults the buffer pool first;
``write_row`` updates the page image and writes it through to the device
(O_DIRECT, no OS cache — the paper's MySQL configuration).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator

from repro.fs.device import BlockFile
from repro.util.units import MB


class DbError(RuntimeError):
    pass


class Table:
    """Fixed-size-row table mapped onto a contiguous block range."""

    def __init__(self, db: "MiniDB", name: str, row_size: int, rows: int,
                 first_block: int):
        if row_size <= 0 or row_size > db.page_size:
            raise DbError(f"bad row size {row_size}")
        self.db = db
        self.name = name
        self.row_size = row_size
        self.rows = rows
        self.first_block = first_block
        self.rows_per_page = db.page_size // row_size
        self.npages = (rows + self.rows_per_page - 1) // self.rows_per_page

    def page_of(self, row_id: int) -> int:
        if not 0 <= row_id < self.rows:
            raise DbError(f"{self.name}: row {row_id} out of range")
        return self.first_block + row_id // self.rows_per_page

    def _slot(self, row_id: int) -> int:
        return (row_id % self.rows_per_page) * self.row_size

    def read_row(self, row_id: int) -> Generator:
        page = yield from self.db.fetch_page(self.page_of(row_id))
        off = self._slot(row_id)
        return bytes(page[off:off + self.row_size])

    def write_row(self, row_id: int, data: bytes) -> Generator:
        if len(data) > self.row_size:
            raise DbError(
                f"{self.name}: row of {len(data)}B > row_size {self.row_size}")
        data = data.ljust(self.row_size, b"\0")
        block = self.page_of(row_id)
        page = yield from self.db.fetch_page(block)
        off = self._slot(row_id)
        updated = page[:off] + data + page[off + self.row_size:]
        yield from self.db.write_page(block, updated)


class MiniDB:
    """The engine: table catalog + buffer pool + page IO."""

    def __init__(self, sim, blockfile: BlockFile,
                 buffer_pool_bytes: float = 16 * MB):
        self.sim = sim
        self.blockfile = blockfile
        self.page_size = blockfile.block_size
        self.buffer_pages = max(1, int(buffer_pool_bytes // self.page_size))
        self._pool: OrderedDict[int, bytes] = OrderedDict()
        self.tables: dict[str, Table] = {}
        self._next_block = 0
        self.page_reads = 0          # device reads (pool misses)
        self.page_writes = 0
        self.pool_hits = 0

    # -- catalog ----------------------------------------------------------
    def create_table(self, name: str, row_size: int, rows: int) -> Table:
        if name in self.tables:
            raise DbError(f"table {name!r} exists")
        table = Table(self, name, row_size, rows, self._next_block)
        if table.first_block + table.npages > self.blockfile.nblocks:
            raise DbError(
                f"table {name!r} needs {table.npages} pages; device full")
        self._next_block += table.npages
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise DbError(f"no table {name!r}") from None

    # -- buffer pool ----------------------------------------------------------
    def fetch_page(self, block: int) -> Generator:
        cached = self._pool.get(block)
        if cached is not None:
            self._pool.move_to_end(block)
            self.pool_hits += 1
            return cached
        data = yield from self.blockfile.read_block(block)
        self.page_reads += 1
        self._admit(block, data)
        return data

    def write_page(self, block: int, data: bytes) -> Generator:
        """Write-through: update the pool image and hit the device."""
        if len(data) != self.page_size:
            raise DbError("page write must be exactly one page")
        if block in self._pool:
            self._pool[block] = data
            self._pool.move_to_end(block)
        else:
            self._admit(block, data)
        yield from self.blockfile.write_block(block, data)
        self.page_writes += 1

    def _admit(self, block: int, data: bytes) -> None:
        self._pool[block] = data
        self._pool.move_to_end(block)
        while len(self._pool) > self.buffer_pages:
            self._pool.popitem(last=False)

    @property
    def pool_fill(self) -> float:
        return len(self._pool) / self.buffer_pages
