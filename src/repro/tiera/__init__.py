"""Tiera: the single-DC multi-tiered storage layer Wiera builds on.

A :class:`~repro.tiera.instance.TieraInstance` encapsulates several storage
tiers inside one data center and runs a local event-response policy over
them (write-back/write-through caching, backup on fill, cold-data demotion,
compression, growth...).  Objects are immutable and versioned (the Wiera
data-model extension of §3.2.1); metadata lives in a BerkeleyDB-like store.
:class:`~repro.tiera.server.TieraServer` spawns/stops instances on behalf of
Wiera's Tiera Server Manager.
"""

from repro.tiera.objects import ObjectRecord, VersionMeta, storage_key
from repro.tiera.metadata_store import MetadataStore
from repro.tiera.events import (
    ColdDataEvent,
    FilledEvent,
    InsertEvent,
    OperationEvent,
    RequestsThresholdEvent,
    LatencyThresholdEvent,
    TimerEvent,
)
from repro.tiera.responses import (
    CompressResponse,
    CopyResponse,
    DeleteResponse,
    EncryptResponse,
    GrowResponse,
    MoveResponse,
    ObjectSelector,
    SetAttrResponse,
    StoreResponse,
)
from repro.tiera.policy import LocalPolicy, Rule, TierSpec
from repro.tiera.instance import TieraError, TieraInstance
from repro.tiera.server import TieraServer
from repro.tiera.instance_tier import InstanceTier

__all__ = [
    "ObjectRecord",
    "VersionMeta",
    "storage_key",
    "MetadataStore",
    "InsertEvent",
    "OperationEvent",
    "TimerEvent",
    "FilledEvent",
    "ColdDataEvent",
    "LatencyThresholdEvent",
    "RequestsThresholdEvent",
    "ObjectSelector",
    "StoreResponse",
    "CopyResponse",
    "MoveResponse",
    "DeleteResponse",
    "CompressResponse",
    "EncryptResponse",
    "GrowResponse",
    "SetAttrResponse",
    "LocalPolicy",
    "Rule",
    "TierSpec",
    "TieraInstance",
    "TieraError",
    "TieraServer",
    "InstanceTier",
]
