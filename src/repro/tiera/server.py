"""The Tiera server: one per data center, spawns instances on request.

Mirrors §4.1: a Tiera server connects to Wiera's Tiera Server Manager on
launch ("to let Wiera know that it is ready to spawn instances"), answers
periodic health pings, and spawns/stops Tiera instances with the storage
tiers and local policy specified in each request.  Instances run within
the server process (sharing its host), as in the paper's prototype.
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional

from repro.net.network import Host, Network
from repro.sim.kernel import Simulator
from repro.sim.rpc import Message, RpcNode
from repro.tiera.instance import TieraInstance
from repro.tiera.policy import LocalPolicy
from repro.util.rng import RngRegistry


class TieraServer:
    """Spawning/lifecycle agent for Tiera instances in one DC."""

    _ids = itertools.count(1)

    def __init__(self, sim: Simulator, network: Network, host: Host,
                 region: str, provider: str = "aws",
                 rng: Optional[RngRegistry] = None, ledger=None,
                 server_id: Optional[str] = None):
        self.sim = sim
        self.network = network
        self.host = host
        self.region = region
        self.provider = provider
        self.rng = rng or RngRegistry(0)
        self.ledger = ledger
        # Callers that need build-to-build determinism (the harness, so
        # two identical build_deployment() calls in one process place
        # shards identically — a requirement of the parallel equivalence
        # contract) pass an explicit id; the process-global counter is
        # only a convenience fallback for ad-hoc constructions.
        self.server_id = server_id or f"tsrv-{region}-{next(self._ids)}"
        self.node = RpcNode(sim, network, host, name=self.server_id)
        self.instances: dict[str, TieraInstance] = {}
        self.tsm_node: Optional[RpcNode] = None

        self.node.register("spawn_instance", self.rpc_spawn_instance)
        self.node.register("stop_instance", self.rpc_stop_instance)
        self.node.register("list_instances", self.rpc_list_instances)
        self.node.register("ping", self.rpc_ping)

    # -- registration with Wiera -------------------------------------------
    def connect_to_tsm(self, tsm_node: RpcNode) -> Generator:
        """Announce readiness to the Tiera Server Manager (step 0 of §4.1)."""
        self.tsm_node = tsm_node
        result = yield self.node.call(tsm_node, "register_server", {
            "server_id": self.server_id,
            "region": self.region,
            "provider": self.provider,
            "server": self,  # in-process handle, as instances run in-proc
        })
        return result

    # -- RPC handlers ---------------------------------------------------------
    def rpc_spawn_instance(self, msg: Message) -> Generator:
        instance_id = msg.args["instance_id"]
        policy: LocalPolicy = msg.args["policy"]
        if instance_id in self.instances:
            raise RuntimeError(f"{self.server_id}: instance {instance_id} exists")
        yield self.sim.timeout(0.005)  # process spawn cost
        instance = TieraInstance(
            self.sim, self.network, self.host, instance_id, self.region,
            policy, rng=self.rng, ledger=self.ledger)
        self.instances[instance_id] = instance
        instance.start()
        return {"instance_id": instance_id,
                "node": instance.node,
                "region": self.region,
                "provider": self.provider,
                # In the prototype instances run inside the server process;
                # the in-proc handle lets the TIM wire monitors directly.
                "instance": instance}

    def rpc_stop_instance(self, msg: Message) -> Generator:
        instance_id = msg.args["instance_id"]
        instance = self.instances.pop(instance_id, None)
        yield self.sim.timeout(0.001)
        if instance is None:
            return {"stopped": False}
        instance.stop()
        return {"stopped": True}

    def rpc_list_instances(self, msg: Message) -> Generator:
        yield self.sim.timeout(0.0002)
        return {"instances": sorted(self.instances)}

    def rpc_ping(self, msg: Message) -> Generator:
        yield self.sim.timeout(0.00005)
        return {"server_id": self.server_id, "alive": True,
                "instances": len(self.instances)}

    # -- failure injection ---------------------------------------------------
    def crash(self) -> None:
        """Kill the host: volatile tier contents are lost, RPCs fail."""
        self.host.crash()
        for instance in self.instances.values():
            instance.on_host_crash()

    def recover(self) -> None:
        self.host.recover()
        for instance in self.instances.values():
            instance.start()

    def __repr__(self) -> str:
        return f"<TieraServer {self.server_id} instances={len(self.instances)}>"
