"""Policy response actions.

A *response* is "the action executed on the occurrence of an event" (§2.1).
Each response is a declarative object whose ``execute(instance, ctx)`` is a
generator run by the instance's policy engine — so responses consume
simulated time exactly where real ones consume wall time (tier reads/
writes, rate-limited transfers).

``what`` arguments are either the literal ``INSERT_OBJECT`` sentinel (the
object that triggered an action event) or an :class:`ObjectSelector`
matching object versions by location/dirty/tags/age — the DSL's
``object.location == tier2 && object.dirty == true`` notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.tiera.objects import ObjectRecord, VersionMeta

#: Sentinel for "the object of the triggering insert" (``insert.object``).
INSERT_OBJECT = "insert.object"


@dataclass
class ResponseContext:
    """What the engine knows when a rule fires."""

    key: Optional[str] = None
    version: Optional[int] = None
    tier: Optional[str] = None      # tier involved in the triggering event
    event: object = None
    source: str = "app"             # who caused it: app | peer | policy


@dataclass(frozen=True)
class ObjectSelector:
    """Predicate over (record, version) pairs."""

    location: Optional[str] = None   # version resident on this tier
    dirty: Optional[bool] = None
    tags: frozenset[str] = frozenset()
    min_idle: Optional[float] = None  # seconds since last access
    key_prefix: Optional[str] = None
    latest_only: bool = True

    def matches(self, record: ObjectRecord, meta: VersionMeta,
                now: float) -> bool:
        if self.key_prefix is not None and not record.key.startswith(self.key_prefix):
            return False
        if self.latest_only and meta.version != record.latest_version:
            return False
        if self.location is not None and self.location not in meta.locations:
            return False
        if self.dirty is not None and meta.dirty != self.dirty:
            return False
        if self.tags and not self.tags.issubset(record.tags):
            return False
        if self.min_idle is not None and (now - meta.last_accessed) < self.min_idle:
            return False
        return True


class Response:
    """Base response action."""

    def execute(self, instance, ctx: ResponseContext) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    # -- shared helpers -------------------------------------------------------
    def _targets(self, instance, what, ctx: ResponseContext):
        """Resolve ``what`` into concrete (record, meta) pairs."""
        if what == INSERT_OBJECT:
            if ctx.key is None or ctx.version is None:
                return []
            record = instance.meta.get_record(ctx.key)
            if record is None or ctx.version not in record.versions:
                return []
            return [(record, record.versions[ctx.version])]
        if isinstance(what, ObjectSelector):
            now = instance.sim.now
            hits = []
            for record in instance.meta.records():
                for meta in list(record.versions.values()):
                    if what.matches(record, meta, now):
                        hits.append((record, meta))
            return hits
        raise TypeError(f"unsupported 'what' argument: {what!r}")


@dataclass(frozen=True)
class SetAttrResponse(Response):
    """Set a metadata attribute on the triggering object
    (``insert.object.dirty = true``)."""

    attr: str = "dirty"
    value: object = True

    _ALLOWED = ("dirty",)

    def execute(self, instance, ctx: ResponseContext) -> Generator:
        if self.attr not in self._ALLOWED:
            raise ValueError(f"cannot set attribute {self.attr!r} via policy")
        for _, meta in self._targets(instance, INSERT_OBJECT, ctx):
            setattr(meta, self.attr, self.value)
        return
        yield  # pragma: no cover


@dataclass(frozen=True)
class StoreResponse(Response):
    """Place the inserted object's bytes on tier ``to`` (Figure 1(a))."""

    to: str = "tier1"

    def execute(self, instance, ctx: ResponseContext) -> Generator:
        if ctx.key is None or ctx.version is None:
            raise ValueError("store response requires an insert context")
        yield from instance.store_version(ctx.key, ctx.version, self.to)
        ctx.tier = self.to


@dataclass(frozen=True)
class CopyResponse(Response):
    """Copy selected object bytes to tier ``to``.

    ``bandwidth`` (bytes/sec) rate-limits the transfer as in Figure 1(b)'s
    ``bandwidth: 40KB/s``; concurrent copies from the same rule share the
    limiter.  ``clear_dirty`` models write-back completion: copied versions
    are marked clean (Figure 1(a)'s timer flush).
    """

    what: object = INSERT_OBJECT
    to: str = "tier2"
    bandwidth: Optional[float] = None
    clear_dirty: bool = False

    def execute(self, instance, ctx: ResponseContext) -> Generator:
        limiter = instance.copy_limiter(self) if self.bandwidth else None
        for record, meta in self._targets(instance, self.what, ctx):
            if self.to in meta.locations:
                if self.clear_dirty:
                    meta.dirty = False
                continue
            if limiter is not None:
                yield from limiter.transmit(meta.stored_size or meta.size)
            yield from instance.copy_version(record.key, meta.version, self.to)
            if self.clear_dirty:
                meta.dirty = False


@dataclass(frozen=True)
class MoveResponse(Response):
    """Copy selected objects to ``to`` then drop them from ``from_tier``
    (or from every other tier when ``from_tier`` is None) — the cold-data
    demotion of Figure 6(a)."""

    what: object = INSERT_OBJECT
    to: str = "tier2"
    from_tier: Optional[str] = None
    bandwidth: Optional[float] = None

    def execute(self, instance, ctx: ResponseContext) -> Generator:
        limiter = instance.copy_limiter(self) if self.bandwidth else None
        for record, meta in self._targets(instance, self.what, ctx):
            if limiter is not None:
                yield from limiter.transmit(meta.stored_size or meta.size)
            yield from instance.move_version(record.key, meta.version, self.to,
                                             from_tier=self.from_tier)


@dataclass(frozen=True)
class DeleteResponse(Response):
    """Remove selected versions entirely (bytes + metadata)."""

    what: object = INSERT_OBJECT

    def execute(self, instance, ctx: ResponseContext) -> Generator:
        for record, meta in self._targets(instance, self.what, ctx):
            yield from instance.purge_version(record.key, meta.version)


@dataclass(frozen=True)
class CompressResponse(Response):
    """zlib-compress selected versions in place on their tiers."""

    what: object = INSERT_OBJECT
    level: int = 6

    def execute(self, instance, ctx: ResponseContext) -> Generator:
        for record, meta in self._targets(instance, self.what, ctx):
            yield from instance.transform_version(record.key, meta.version,
                                                  "zlib", level=self.level)


@dataclass(frozen=True)
class EncryptResponse(Response):
    """Encrypt selected versions in place with the instance key."""

    what: object = INSERT_OBJECT
    key_id: str = "default"

    def execute(self, instance, ctx: ResponseContext) -> Generator:
        for record, meta in self._targets(instance, self.what, ctx):
            yield from instance.transform_version(record.key, meta.version,
                                                  f"xor:{self.key_id}")


@dataclass(frozen=True)
class GrowResponse(Response):
    """Extend a tier's provisioned capacity by ``amount`` bytes."""

    tier: str = "tier1"
    amount: float = 0.0

    def execute(self, instance, ctx: ResponseContext) -> Generator:
        instance.tier(self.tier).grow(self.amount)
        return
        yield  # pragma: no cover
