"""Default (single-instance) consistency protocol.

A bare Tiera instance has no replication: puts create a local version,
gets read the local latest.  Wiera's global protocols
(:mod:`repro.core.consistency`) implement the same duck-typed interface
and are attached by the Tiera Instance Manager at spawn time.
"""

from __future__ import annotations

from typing import Generator, Optional


class LocalOnlyProtocol:
    """No replication; everything is local."""

    name = "local"

    def attach(self, instance) -> None:
        self.instance = instance

    def detach(self, instance) -> None:
        pass

    def on_put(self, instance, key: str, data: bytes, tags=(),
               src: str = "app") -> Generator:
        version = yield from instance.local_put(key, data, tags=tags)
        return {"version": version, "region": instance.region}

    def on_get(self, instance, key: str,
               version: Optional[int] = None) -> Generator:
        data, meta, record = yield from instance.read_version(key, version)
        return {"data": data, "version": meta.version,
                "latest_local": record.latest_version}

    def on_replica_update(self, instance, args: dict) -> Generator:
        raise RuntimeError("local-only instance received a replica update")
        yield  # pragma: no cover

    def on_replica_remove(self, instance, args: dict) -> Generator:
        raise RuntimeError("local-only instance received a replica remove")
        yield  # pragma: no cover

    def on_remove(self, instance, key: str,
                  version: Optional[int] = None,
                  src: str = "app") -> Generator:
        removed = yield from instance.local_remove(key, version)
        return {"removed": removed}

    def drain(self, instance) -> Generator:
        """Nothing queued in local mode."""
        return
        yield  # pragma: no cover

    def pending_count(self, instance) -> int:
        return 0
