"""Local policy specification: tiers + event/response rules.

A :class:`LocalPolicy` is what a Tiera instance is *defined by* (§2.1):
"the desired storage tiers, their capacities, and a set of events along
with their responses".  Policies are plain data — built programmatically,
by the DSL compiler, or taken from the built-in library — and interpreted
by the instance's policy engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.tiera.events import (
    ColdDataEvent,
    FilledEvent,
    InsertEvent,
    OperationEvent,
    PolicyEvent,
    TimerEvent,
)
from repro.tiera.responses import Response, StoreResponse
from repro.util.units import parse_size


@dataclass(frozen=True)
class TierSpec:
    """One storage tier requested by a policy."""

    name: str           # policy-local name, e.g. "tier1"
    profile: str        # storage profile, e.g. "memcached", "ebs_ssd"
    capacity: Optional[float] = None  # bytes; None = service default
    options: dict = field(default_factory=dict)

    @classmethod
    def parse(cls, name: str, profile: str, size: str | int | None = None,
              **options) -> "TierSpec":
        capacity = parse_size(size) if size is not None else None
        return cls(name=name, profile=profile, capacity=capacity,
                   options=dict(options))


@dataclass(frozen=True)
class Rule:
    """event(...) : response { ... } — one policy rule."""

    event: PolicyEvent
    responses: tuple[Response, ...]

    def __post_init__(self):
        if not isinstance(self.responses, tuple):
            object.__setattr__(self, "responses", tuple(self.responses))


@dataclass(frozen=True)
class LocalPolicy:
    """A complete Tiera instance definition."""

    name: str
    tiers: tuple[TierSpec, ...]
    rules: tuple[Rule, ...] = ()
    keep_versions: Optional[int] = None  # GC: retain at most N versions/key
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.tiers:
            raise ValueError(f"policy {self.name!r} declares no tiers")
        names = [t.name for t in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"policy {self.name!r} has duplicate tier names")
        if not isinstance(self.tiers, tuple):
            object.__setattr__(self, "tiers", tuple(self.tiers))
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))

    # -- rule queries used by the engine -------------------------------------
    def insert_rules(self, tier: Optional[str]) -> list[Rule]:
        """Rules for InsertEvent with the given tier qualifier."""
        return [r for r in self.rules
                if isinstance(r.event, InsertEvent) and r.event.tier == tier]

    def operation_rules(self, op: str) -> list[Rule]:
        return [r for r in self.rules
                if isinstance(r.event, OperationEvent) and r.event.op == op]

    def timer_rules(self) -> list[Rule]:
        return [r for r in self.rules if isinstance(r.event, TimerEvent)]

    def filled_rules(self) -> list[Rule]:
        return [r for r in self.rules if isinstance(r.event, FilledEvent)]

    def cold_rules(self) -> list[Rule]:
        return [r for r in self.rules if isinstance(r.event, ColdDataEvent)]

    def default_store_tier(self) -> str:
        """Where a put lands when no unqualified insert rule says otherwise."""
        for rule in self.insert_rules(None):
            for response in rule.responses:
                if isinstance(response, StoreResponse):
                    return response.to
        return self.tiers[0].name

    def with_name(self, name: str) -> "LocalPolicy":
        return replace(self, name=name)


def write_through_policy(name: str = "PersistentInstance",
                         cache_profile: str = "memcached",
                         durable_profile: str = "ebs_ssd",
                         cache_size: str = "5G",
                         durable_size: str = "5G") -> LocalPolicy:
    """Figure 1(b) skeleton: cache + synchronous copy to the durable tier."""
    from repro.tiera.responses import CopyResponse, INSERT_OBJECT
    return LocalPolicy(
        name=name,
        tiers=(TierSpec.parse("tier1", cache_profile, cache_size),
               TierSpec.parse("tier2", durable_profile, durable_size)),
        rules=(
            Rule(InsertEvent(tier=None), (StoreResponse(to="tier1"),)),
            Rule(InsertEvent(tier="tier1"),
                 (CopyResponse(what=INSERT_OBJECT, to="tier2"),)),
        ))


def write_back_policy(name: str = "LowLatencyInstance",
                      cache_profile: str = "memcached",
                      durable_profile: str = "ebs_ssd",
                      cache_size: str = "5G",
                      durable_size: str = "5G",
                      flush_period: float = 5.0) -> LocalPolicy:
    """Figure 1(a) skeleton: store to memory, flush dirty data on a timer."""
    from repro.tiera.responses import (CopyResponse, ObjectSelector,
                                       SetAttrResponse)
    return LocalPolicy(
        name=name,
        tiers=(TierSpec.parse("tier1", cache_profile, cache_size),
               TierSpec.parse("tier2", durable_profile, durable_size)),
        rules=(
            Rule(InsertEvent(tier=None),
                 (SetAttrResponse("dirty", True), StoreResponse(to="tier1"))),
            Rule(TimerEvent(period=flush_period),
                 (CopyResponse(what=ObjectSelector(location="tier1", dirty=True),
                               to="tier2", clear_dirty=True),)),
        ))


def memory_only_policy(name: str = "MemoryInstance",
                       size: str = "5G") -> LocalPolicy:
    """Single volatile memory tier (the AWS remote-memory instance of §5.4)."""
    return LocalPolicy(
        name=name,
        tiers=(TierSpec.parse("tier1", "memcached", size),),
        rules=(Rule(InsertEvent(tier=None), (StoreResponse(to="tier1"),)),))


def disk_only_policy(name: str = "DiskInstance", profile: str = "azure_disk",
                     size: str = "30G") -> LocalPolicy:
    """Single block tier (the Azure primary of §5.4)."""
    return LocalPolicy(
        name=name,
        tiers=(TierSpec.parse("tier1", profile, size),),
        rules=(Rule(InsertEvent(tier=None), (StoreResponse(to="tier1"),)),))
