"""The Tiera instance: multi-tier storage + local policy engine + RPC.

One instance runs inside a Tiera server in one data center.  It owns its
storage tiers, its metadata store, and the interpretation of its local
policy's event-response rules; its *global* behaviour (replication,
consistency, forwarding) is delegated to an attached protocol object
managed by Wiera.

The data path really moves bytes: a put stages the payload, runs the
insert rules (which decide tier placement, set dirty bits, trigger
write-through copies...), and a get locates the fastest tier holding the
chosen version and decodes any compress/encrypt chain.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Iterable, Optional

from repro.net.link import BandwidthLink
from repro.net.network import Host, Network
from repro.obs.api import get_obs
from repro.sim.kernel import Simulator
from repro.sim.primitives import Gate
from repro.sim.rpc import Message, RpcNode
from repro.storage.backend import ObjectMissingError, StorageBackend
from repro.storage.factory import make_tier
from repro.tiera import transforms
from repro.tiera.local_protocol import LocalOnlyProtocol
from repro.tiera.metadata_store import MetadataStore
from repro.tiera.objects import ObjectRecord, VersionMeta, storage_key
from repro.tiera.events import FilledEvent
from repro.tiera.policy import LocalPolicy, Rule
from repro.tiera.responses import ResponseContext
from repro.util.rng import RngRegistry

#: fixed metadata-store update overhead charged per mutating operation
METADATA_WRITE_LATENCY = 0.0002


class TieraError(RuntimeError):
    pass


class InstanceRef:
    """Lightweight handle on a (possibly remote) peer instance."""

    def __init__(self, instance_id: str, region: str, node: RpcNode):
        self.instance_id = instance_id
        self.region = region
        self.node = node

    def __repr__(self) -> str:
        return f"<InstanceRef {self.instance_id}@{self.region}>"


class TieraInstance:
    """One policy-defined storage instance inside a single DC."""

    def __init__(self, sim: Simulator, network: Network, host: Host,
                 instance_id: str, region: str, policy: LocalPolicy,
                 rng: Optional[RngRegistry] = None, ledger=None,
                 keyring: Optional[dict[str, str]] = None,
                 extra_tiers: Optional[dict[str, StorageBackend]] = None):
        self.sim = sim
        self.network = network
        self.host = host
        self.instance_id = instance_id
        self.region = region
        self.policy = policy
        self.rng = rng or RngRegistry(0)
        self.ledger = ledger
        self.keyring = dict(keyring or {"default": f"key-{instance_id}"})

        self.node = RpcNode(sim, network, host, name=f"tiera:{instance_id}")
        self.meta = MetadataStore()
        self.gate = Gate(sim, open_=True)
        self.protocol = LocalOnlyProtocol()
        self.protocol.attach(self)
        self.peers: dict[str, InstanceRef] = {}  # instance_id -> ref
        self.wiera = None          # TIM backlink, set by core
        self.lock_client = None    # GlobalLockClient, set by core

        # Tiers, in policy order.
        self.tiers: dict[str, StorageBackend] = {}
        for spec in policy.tiers:
            backend = make_tier(
                sim, spec.profile, spec.capacity,
                name=f"{instance_id}.{spec.name}",
                rng=self.rng.stream(f"{instance_id}.{spec.name}"),
                ledger=ledger, region=region, **spec.options)
            self.tiers[spec.name] = backend
        if extra_tiers:
            for name, backend in extra_tiers.items():
                if name in self.tiers:
                    raise TieraError(f"duplicate tier name {name!r}")
                self.tiers[name] = backend

        # Payload staging between version creation and tier placement.
        self._staging: dict[tuple[str, int], bytes] = {}
        self._copy_links: dict[object, BandwidthLink] = {}
        self._filled_armed: dict[int, bool] = {}  # rule index -> armed

        # In-flight data operations (a consistency switch drains these
        # before swapping protocols — "all operations in progress ...
        # applied first", §3.3.2).
        self.inflight = 0

        # Keyspace partitioning (repro.shard).  Both objects are shipped
        # in over ctl RPCs so this layer never imports shard code: the
        # guard rejects requests for keys this shard does not own
        # (epoch/redirect protocol) and the handoff spec, present only
        # during a live rebalance, dual-writes moving keys to their new
        # owner.  Both are None outside sharded deployments, leaving the
        # unsharded data path untouched.
        self.shard_guard = None
        self.shard_handoff = None
        self.handoff_forwards = 0
        self._m_handoff = None   # created on first forward

        # Load-balancing redirect installed by Wiera's load balancer: a
        # (peer_instance_id, fraction) pair makes this instance forward
        # that fraction of gets to the peer (the `forward` response for
        # RequestsMonitoring events, §3.2.3).
        self.get_redirect: Optional[tuple[str, float]] = None
        self.redirected_gets = 0
        self._lb_rng = self.rng.stream(f"{instance_id}.lb")

        # Telemetry.
        self.puts_from_app = 0
        self.gets_from_app = 0
        self.conflicts_resolved = 0
        self.updates_applied = 0
        self.updates_ignored = 0
        self.request_log: deque[tuple[float, str]] = deque()  # (t, source)
        self.get_log: deque[float] = deque()                  # get arrivals
        self.latency_listeners: list = []  # callbacks(op, elapsed, src)
        self._obs = get_obs(sim)
        self._op_hists: dict = {}  # (op, src) -> registry histogram
        self._background: list = []
        self.running = False

        self._register_rpc()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch background policy processes (timers, cold scanners)."""
        if self.running:
            return
        self.running = True
        for rule in self.policy.timer_rules():
            self._background.append(self.sim.process(
                self._timer_loop(rule), name=f"{self.instance_id}:timer"))
        for rule in self.policy.cold_rules():
            self._background.append(self.sim.process(
                self._cold_loop(rule), name=f"{self.instance_id}:cold"))

    def stop(self) -> None:
        self.running = False
        for proc in self._background:
            if proc.is_alive:
                proc.interrupt("instance stopped")
        self._background.clear()

    def on_host_crash(self) -> None:
        """Volatile tiers lose their contents; background work stops."""
        self.stop()
        for backend in self.tiers.values():
            if backend.profile.volatile:
                backend.wipe()
                for record in self.meta.records():
                    for meta in record.versions.values():
                        meta.locations.discard(self._tier_name(backend))

    def checkpoint_metadata(self, path) -> None:
        """Persist all object metadata (the BerkeleyDB role, §4.2):
        "all object metadata is stored and persisted"."""
        self.meta.checkpoint(path)

    def restore_metadata(self, path) -> None:
        """Reload a metadata checkpoint (e.g. after a server restart).

        Locations referring to volatile tiers that lost their contents are
        dropped so reads don't chase ghosts.
        """
        self.meta.load(path)
        for record in self.meta.records():
            for meta in record.versions.values():
                for loc in list(meta.locations):
                    backend = self.tiers.get(loc)
                    if backend is None:
                        meta.locations.discard(loc)
                        continue
                    skey = storage_key(record.key, meta.version)
                    if skey not in backend:
                        meta.locations.discard(loc)

    def _tier_name(self, backend: StorageBackend) -> str:
        for name, b in self.tiers.items():
            if b is backend:
                return name
        raise TieraError("backend not part of this instance")

    # ------------------------------------------------------------------
    # tiers
    # ------------------------------------------------------------------
    def tier(self, name: str) -> StorageBackend:
        try:
            return self.tiers[name]
        except KeyError:
            raise TieraError(
                f"{self.instance_id}: no tier {name!r} "
                f"(has {sorted(self.tiers)})") from None

    def read_preference(self, locations: Iterable[str]) -> list[str]:
        """Locations ordered fastest-first by profile read latency."""
        known = [loc for loc in locations if loc in self.tiers]
        return sorted(known, key=lambda n: self.tiers[n].profile.read_latency)

    def copy_limiter(self, response) -> BandwidthLink:
        link = self._copy_links.get(response)
        if link is None:
            link = BandwidthLink(self.sim, response.bandwidth,
                                 name=f"{self.instance_id}.copy")
            self._copy_links[response] = link
        return link

    # ------------------------------------------------------------------
    # version primitives (used by responses and protocols)
    # ------------------------------------------------------------------
    def _payload(self, key: str, version: int, meta: VersionMeta) -> Generator:
        """Fetch raw (encoded) bytes for a version, cheapest source first."""
        staged = self._staging.get((key, version))
        if staged is not None:
            return staged
            yield  # pragma: no cover
        for tier_name in self.read_preference(meta.locations):
            backend = self.tiers[tier_name]
            skey = storage_key(key, version)
            if skey in backend:
                data = yield from backend.read(skey)
                return data
        raise ObjectMissingError(
            f"{self.instance_id}: no readable copy of {key!r} v{version}")

    def local_put(self, key: str, data: bytes, version: Optional[int] = None,
                  tags: Iterable[str] = (), origin: str = "",
                  last_modified: Optional[float] = None,
                  run_rules: bool = True) -> Generator:
        """Create (or install) a version locally, honouring insert rules.

        Returns the version number.  ``version``/``last_modified`` are
        supplied when installing a replica update so the metadata matches
        the originating instance.
        """
        now = self.sim.now
        record = self.meta.get_record(key)
        if record is None:
            record = ObjectRecord(key=key)
            self.meta.put_record(record)
        if version is None:
            version = record.next_version()
        if version in record.versions:
            raise TieraError(
                f"{self.instance_id}: version {version} of {key!r} exists")
        meta = VersionMeta(
            version=version, size=len(data), created_at=now,
            last_modified=last_modified if last_modified is not None else now,
            last_accessed=now, origin=origin or self.instance_id)
        record.add_version(meta)
        record.tags.update(tags)
        self._staging[(key, version)] = bytes(data)
        try:
            ctx = ResponseContext(key=key, version=version)
            if run_rules:
                for rule in self.policy.insert_rules(None):
                    for response in rule.responses:
                        yield from response.execute(self, ctx)
            if not meta.locations:
                yield from self.store_version(
                    key, version, self.policy.default_store_tier())
            if run_rules:
                for placed in list(meta.locations):
                    for rule in self.policy.insert_rules(placed):
                        ctx_t = ResponseContext(key=key, version=version,
                                                tier=placed)
                        for response in rule.responses:
                            yield from response.execute(self, ctx_t)
        finally:
            self._staging.pop((key, version), None)
        yield self.sim.timeout(METADATA_WRITE_LATENCY)
        yield from self._garbage_collect(record)
        yield from self._check_filled()
        return version

    def store_version(self, key: str, version: int, tier_name: str) -> Generator:
        record = self._record_or_raise(key)
        meta = self._meta_or_raise(record, version)
        backend = self.tier(tier_name)
        data = yield from self._payload(key, version, meta)
        yield from backend.write(storage_key(key, version), data)
        meta.locations.add(tier_name)
        meta.stored_size = len(data)

    def copy_version(self, key: str, version: int, tier_name: str) -> Generator:
        yield from self.store_version(key, version, tier_name)

    def move_version(self, key: str, version: int, tier_name: str,
                     from_tier: Optional[str] = None) -> Generator:
        record = self._record_or_raise(key)
        meta = self._meta_or_raise(record, version)
        if tier_name not in meta.locations:
            yield from self.store_version(key, version, tier_name)
        sources = ([from_tier] if from_tier
                   else [t for t in list(meta.locations) if t != tier_name])
        for src in sources:
            if src is None or src == tier_name or src not in meta.locations:
                continue
            backend = self.tier(src)
            skey = storage_key(key, version)
            if skey in backend:
                yield from backend.delete(skey)
            meta.locations.discard(src)

    def purge_version(self, key: str, version: int) -> Generator:
        record = self._record_or_raise(key)
        meta = self._meta_or_raise(record, version)
        skey = storage_key(key, version)
        for tier_name in list(meta.locations):
            backend = self.tiers.get(tier_name)
            if backend is not None and skey in backend:
                yield from backend.delete(skey)
        record.drop_version(version)
        if not record.versions:
            self.meta.delete_record(key)
        yield self.sim.timeout(METADATA_WRITE_LATENCY)

    def transform_version(self, key: str, version: int, name: str,
                          level: int = 6) -> Generator:
        """Apply a compress/encrypt transform in place on every location."""
        record = self._record_or_raise(key)
        meta = self._meta_or_raise(record, version)
        if name in meta.encodings:
            return  # idempotent
        data = yield from self._payload(key, version, meta)
        encoded = transforms.encode(name, data, self.keyring, level=level)
        skey = storage_key(key, version)
        for tier_name in list(meta.locations):
            backend = self.tier(tier_name)
            yield from backend.write(skey, encoded)
        meta.encodings = meta.encodings + (name,)
        meta.stored_size = len(encoded)

    def read_version(self, key: str, version: Optional[int] = None,
                     run_rules: bool = True) -> Generator:
        """Return (decoded bytes, version meta, record) for key/version.

        ``run_rules`` triggers the policy's get-operation rules (e.g. a
        promotion rule copying a slow-tier object into the cache); they
        run in the background so the read reply is not delayed.
        """
        record = self._record_or_raise(key)
        if version is None:
            meta = record.latest()
            if meta is None:
                raise ObjectMissingError(f"{self.instance_id}: {key!r} empty")
        else:
            meta = self._meta_or_raise(record, version)
        served_from = next(iter(self.read_preference(meta.locations)), None)
        raw = yield from self._payload(key, meta.version, meta)
        data = transforms.decode_chain(meta.encodings, raw, self.keyring)
        meta.touch(self.sim.now)
        if run_rules:
            self._fire_get_rules(key, meta.version, served_from)
        return data, meta, record

    def _fire_get_rules(self, key: str, version: int,
                        served_from: Optional[str]) -> None:
        """Run matching get-operation rules asynchronously."""
        rules = [r for r in self.policy.operation_rules("get")
                 if r.event.tier is None or r.event.tier == served_from]
        if not rules:
            return
        ctx = ResponseContext(key=key, version=version, tier=served_from)

        def runner():
            for rule in rules:
                yield from self._run_rule(rule, ctx)
        self.sim.process(runner(), name=f"{self.instance_id}:get-rules")

    def local_remove(self, key: str, version: Optional[int] = None) -> Generator:
        record = self.meta.get_record(key)
        if record is None:
            return 0
        victims = [version] if version is not None else record.version_list()
        removed = 0
        for v in victims:
            if record.has_version(v):
                yield from self.purge_version(key, v)
                removed += 1
        return removed

    def _record_or_raise(self, key: str) -> ObjectRecord:
        record = self.meta.get_record(key)
        if record is None:
            raise ObjectMissingError(f"{self.instance_id}: no object {key!r}")
        return record

    @staticmethod
    def _meta_or_raise(record: ObjectRecord, version: int) -> VersionMeta:
        meta = record.versions.get(version)
        if meta is None:
            raise ObjectMissingError(
                f"no version {version} of {record.key!r} "
                f"(has {record.version_list()})")
        return meta

    # ------------------------------------------------------------------
    # conflict handling (last-write-wins, §4.2)
    # ------------------------------------------------------------------
    def apply_replica_update(self, key: str, version: int,
                             last_modified: float, data: bytes,
                             origin: str) -> Generator:
        """Install an update from a peer if it wins LWW; returns decision."""
        record = self.meta.get_record(key)
        incoming = VersionMeta(version=version, size=len(data), created_at=0,
                               last_modified=last_modified, last_accessed=0,
                               origin=origin)
        if record is not None:
            local_latest = record.latest()
            if record.has_version(version):
                existing = record.versions[version]
                if incoming.newer_than(existing):
                    # Same version number, newer write: replace contents.
                    self.conflicts_resolved += 1
                    yield from self.purge_version(key, version)
                else:
                    self.updates_ignored += 1
                    return {"applied": False, "reason": "lww-older"}
            elif local_latest is not None and not incoming.newer_than(local_latest) \
                    and version < local_latest.version:
                # Strictly older than what we already expose; keep history.
                pass
        yield from self.local_put(key, data, version=version, origin=origin,
                                  last_modified=last_modified)
        self.updates_applied += 1
        return {"applied": True}

    def replica_args(self, key: str, version: int) -> Generator:
        """``replica_update`` args for a local version — the payload shape
        every push path (anti-entropy repair, shard migration) ships."""
        data, meta, _ = yield from self.read_version(key, version,
                                                     run_rules=False)
        return {"key": key, "version": meta.version,
                "last_modified": meta.last_modified,
                "origin": meta.origin or self.instance_id, "data": data}

    # ------------------------------------------------------------------
    # keyspace partitioning (repro.shard)
    # ------------------------------------------------------------------
    def _shard_check(self, key: str) -> None:
        if self.shard_guard is not None:
            self.shard_guard.check(key)

    def _forward_handoff(self, key: str, version: Optional[int],
                         remove: bool = False) -> None:
        """Dual-write a just-acknowledged write to the key's new owner.

        Fire-and-forget on purpose: the forward must not add latency to
        the acknowledged operation, and a forward lost to a fault is
        re-covered by the rebalancer's gated cutover sweep.
        """
        handoff = self.shard_handoff
        if handoff is None:
            return
        dest = handoff.moves(key)
        if dest is None:
            return
        if not remove and version is None:
            return
        for node in handoff.dest_nodes(dest):
            if remove:
                self.node.send_oneway(node, "replica_remove",
                                      {"key": key, "version": version},
                                      size=256)
            else:
                self.sim.process(
                    self._handoff_push(node, key, version),
                    name=f"{self.instance_id}:handoff")
        self.handoff_forwards += 1
        if self._m_handoff is None:
            self._m_handoff = self._obs.metrics.counter(
                "shard.handoff_forwards", instance=self.instance_id)
        self._m_handoff.inc()

    def _handoff_push(self, node, key: str, version: int) -> Generator:
        """Read the committed version and push it to one destination."""
        try:
            args = yield from self.replica_args(key, version)
        except ObjectMissingError:
            return   # removed/GC'd between ack and push; sweep reconciles
        yield from self.node._oneway(node, "replica_update", args,
                                     size=len(args["data"]) + 512)

    # ------------------------------------------------------------------
    # background policy engines
    # ------------------------------------------------------------------
    def _run_rule(self, rule: Rule, ctx: ResponseContext) -> Generator:
        for response in rule.responses:
            yield from response.execute(self, ctx)
        # Background copies/moves change tier occupancy too — fill rules
        # must see it (write-back flushes can push a tier past threshold).
        if not isinstance(rule.event, FilledEvent):
            yield from self._check_filled()

    def _timer_loop(self, rule: Rule) -> Generator:
        from repro.sim.kernel import Interrupt
        period = rule.event.period
        try:
            while self.running:
                yield self.sim.timeout(period)
                yield from self._run_rule(rule, ResponseContext(event=rule.event))
        except Interrupt:
            return

    def _cold_loop(self, rule: Rule) -> Generator:
        from repro.sim.kernel import Interrupt
        event = rule.event
        try:
            while self.running:
                yield self.sim.timeout(event.check_interval)
                yield from self._run_rule(
                    rule, ResponseContext(event=event))
        except Interrupt:
            return

    def _check_filled(self) -> Generator:
        for idx, rule in enumerate(self.policy.filled_rules()):
            event = rule.event
            backend = self.tiers.get(event.tier)
            if backend is None:
                continue
            armed = self._filled_armed.get(idx, True)
            frac = backend.fill_fraction
            if armed and frac >= event.fraction:
                self._filled_armed[idx] = False
                yield from self._run_rule(
                    rule, ResponseContext(event=event, tier=event.tier))
            elif not armed and frac < event.fraction:
                self._filled_armed[idx] = True

    def _garbage_collect(self, record: ObjectRecord) -> Generator:
        keep = self.policy.keep_versions
        if keep is None or len(record.versions) <= keep:
            return
        for version in record.version_list()[:-keep]:
            yield from self.purge_version(record.key, version)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def note_request(self, source: str) -> None:
        self.request_log.append((self.sim.now, source))
        horizon = self.sim.now - 3600.0
        while self.request_log and self.request_log[0][0] < horizon:
            self.request_log.popleft()

    def _note_get(self) -> None:
        self.get_log.append(self.sim.now)
        horizon = self.sim.now - 3600.0
        while self.get_log and self.get_log[0] < horizon:
            self.get_log.popleft()

    def gets_in_window(self, window: float) -> int:
        cutoff = self.sim.now - window
        return sum(1 for t in reversed(self.get_log) if t >= cutoff)

    def requests_in_window(self, window: float) -> dict[str, int]:
        """Request counts per source over the trailing ``window`` seconds."""
        cutoff = self.sim.now - window
        counts: dict[str, int] = {}
        for t, src in reversed(self.request_log):
            if t < cutoff:
                break
            counts[src] = counts.get(src, 0) + 1
        return counts

    def _op_hist(self, op: str, src: str):
        hist = self._op_hists.get((op, src))
        if hist is None:
            hist = self._obs.metrics.histogram(
                "tiera.op_latency", instance=self.instance_id, op=op, src=src)
            self._op_hists[(op, src)] = hist
        return hist

    def _notify_latency(self, op: str, elapsed: float, src: str) -> None:
        self._op_hist(op, src).observe(elapsed)
        for listener in self.latency_listeners:
            listener(op, elapsed, src)

    # ------------------------------------------------------------------
    # RPC surface
    # ------------------------------------------------------------------
    def _register_rpc(self) -> None:
        n = self.node
        n.register("put", self.rpc_put)
        n.register("get", self.rpc_get)
        n.register("get_version", self.rpc_get_version)
        n.register("get_version_list", self.rpc_get_version_list)
        n.register("update", self.rpc_update)
        n.register("remove", self.rpc_remove)
        n.register("remove_version", self.rpc_remove_version)
        n.register("replica_update", self.rpc_replica_update)
        n.register("replica_remove", self.rpc_replica_remove)
        n.register("forward_put", self.rpc_forward_put)
        n.register("forward_remove", self.rpc_forward_remove)
        n.register("digest", self.rpc_digest)
        n.register("check_readable", self.rpc_check_readable)
        n.register("reconstruct_fragment", self.rpc_reconstruct_fragment)
        n.register("manifest_remap", self.rpc_manifest_remap)
        n.register("peer_get", self.rpc_peer_get)
        n.register("peer_has", self.rpc_peer_has)
        n.register("probe", self.rpc_probe)
        n.register("stats", self.rpc_stats)
        n.register("list_keys", self.rpc_list_keys)
        n.register("tier_put", self.rpc_tier_put)
        n.register("tier_get", self.rpc_tier_get)
        n.register("tier_delete", self.rpc_tier_delete)
        n.register("tier_has", self.rpc_tier_has)
        n.register("ctl_close_gate", self.rpc_ctl_close_gate)
        n.register("ctl_open_gate", self.rpc_ctl_open_gate)
        n.register("ctl_drain", self.rpc_ctl_drain)
        n.register("ctl_set_protocol", self.rpc_ctl_set_protocol)
        n.register("ctl_set_peers", self.rpc_ctl_set_peers)
        n.register("ctl_add_tier", self.rpc_ctl_add_tier)
        n.register("ctl_set_redirect", self.rpc_ctl_set_redirect)
        n.register("ctl_set_shard", self.rpc_ctl_set_shard)
        n.register("ctl_set_handoff", self.rpc_ctl_set_handoff)
        n.register("ctl_migrate_keys", self.rpc_ctl_migrate_keys)
        n.register("ctl_purge_misowned", self.rpc_ctl_purge_misowned)
        n.register("ctl_demote_cold", self.rpc_ctl_demote_cold)
        n.register("ctl_adopt_remote_cold", self.rpc_ctl_adopt_remote_cold)

    def rpc_put(self, msg: Message) -> Generator:
        yield self.gate.wait()
        self._shard_check(msg.args["key"])
        start = self.sim.now
        self.puts_from_app += 1
        self.note_request("app")
        self.inflight += 1
        try:
            result = yield from self.protocol.on_put(
                self, msg.args["key"], msg.args["data"],
                tags=msg.args.get("tags", ()), src="app")
        finally:
            self.inflight -= 1
        self._forward_handoff(msg.args["key"], result.get("version"))
        self._notify_latency("put", self.sim.now - start, "app")
        return result

    def rpc_get(self, msg: Message) -> Generator:
        yield self.gate.wait()
        self._shard_check(msg.args["key"])
        start = self.sim.now
        self.gets_from_app += 1
        self._note_get()
        redirect = self.get_redirect
        if redirect is not None:
            peer_id, fraction = redirect
            peer = self.peers.get(peer_id)
            if peer is not None and self._lb_rng.random() < fraction:
                self.redirected_gets += 1
                result = yield self.node.call(
                    peer.node, "peer_get",
                    {"key": msg.args["key"],
                     "version": msg.args.get("version")})
                self._notify_latency("get", self.sim.now - start, "app")
                return result
        result = yield from self.protocol.on_get(self, msg.args["key"],
                                                 msg.args.get("version"))
        self._notify_latency("get", self.sim.now - start, "app")
        return result

    def rpc_get_version(self, msg: Message) -> Generator:
        yield self.gate.wait()
        self._shard_check(msg.args["key"])
        result = yield from self.protocol.on_get(
            self, msg.args["key"], msg.args["version"])
        return result

    def rpc_get_version_list(self, msg: Message) -> Generator:
        yield self.sim.timeout(METADATA_WRITE_LATENCY)
        record = self.meta.get_record(msg.args["key"])
        return {"versions": record.version_list() if record else []}

    def rpc_update(self, msg: Message) -> Generator:
        """Table 2 ``update``: rewrite the contents of a specific version."""
        yield self.gate.wait()
        key, version = msg.args["key"], msg.args["version"]
        self._shard_check(key)
        record = self._record_or_raise(key)
        self._meta_or_raise(record, version)
        yield from self.purge_version(key, version)
        yield from self.local_put(key, msg.args["data"], version=version)
        self._forward_handoff(key, version)
        return {"version": version, "updated": True}

    def rpc_remove(self, msg: Message) -> Generator:
        yield self.gate.wait()
        self._shard_check(msg.args["key"])
        result = yield from self.protocol.on_remove(self, msg.args["key"])
        self._forward_handoff(msg.args["key"], None, remove=True)
        return result

    def rpc_remove_version(self, msg: Message) -> Generator:
        yield self.gate.wait()
        self._shard_check(msg.args["key"])
        result = yield from self.protocol.on_remove(
            self, msg.args["key"], msg.args["version"])
        self._forward_handoff(msg.args["key"], msg.args["version"],
                              remove=True)
        return result

    def rpc_replica_update(self, msg: Message) -> Generator:
        self.note_request(msg.args.get("origin", msg.src))
        result = yield from self.protocol.on_replica_update(self, msg.args)
        return result

    def rpc_replica_remove(self, msg: Message) -> Generator:
        result = yield from self.protocol.on_replica_remove(self, msg.args)
        return result

    def rpc_forward_put(self, msg: Message) -> Generator:
        yield self.gate.wait()
        start = self.sim.now
        origin = msg.args.get("origin", msg.src)
        self.note_request(origin)
        self.inflight += 1
        try:
            result = yield from self.protocol.on_put(
                self, msg.args["key"], msg.args["data"],
                tags=msg.args.get("tags", ()), src=origin)
        finally:
            self.inflight -= 1
        self._notify_latency("put", self.sim.now - start, origin)
        return result

    def rpc_forward_remove(self, msg: Message) -> Generator:
        yield self.gate.wait()
        start = self.sim.now
        origin = msg.args.get("origin", msg.src)
        self.note_request(origin)
        self.inflight += 1
        try:
            result = yield from self.protocol.on_remove(
                self, msg.args["key"], msg.args.get("version"), src=origin)
        finally:
            self.inflight -= 1
        self._notify_latency("remove", self.sim.now - start, origin)
        return result

    def key_state(self) -> dict[str, tuple[int, float]]:
        """Latest ``(version, last_modified)`` per key, in zero sim-time.

        The shared walk behind the anti-entropy digest RPC and the
        harness's canonical store rows
        (:meth:`repro.bench.harness.Deployment.store_rows`).
        """
        keys = {}
        for record in self.meta.records():
            meta = record.latest()
            if meta is not None:
                keys[record.key] = (meta.version, meta.last_modified)
        return keys

    def rpc_digest(self, msg: Message) -> Generator:
        """Anti-entropy digest: latest (version, last_modified) per key."""
        yield self.sim.timeout(METADATA_WRITE_LATENCY)
        return {"keys": self.key_state(), "instance": self.instance_id}

    def rpc_check_readable(self, msg: Message) -> Generator:
        """Readability probe for specific (key, version) pairs.

        Unlike ``digest`` this checks the *bytes*, not just the metadata:
        a version whose only locations were wiped volatile tiers (host
        crash) still advertises itself in the digest, but fails here.
        The EC fragment repairer relies on that distinction.
        """
        yield self.sim.timeout(METADATA_WRITE_LATENCY)
        missing = []
        for key, version in msg.args["items"]:
            readable = False
            record = self.meta.get_record(key)
            if record is not None and record.has_version(version):
                meta = record.versions[version]
                skey = storage_key(key, version)
                readable = any(skey in self.tiers[t]
                               for t in meta.locations if t in self.tiers)
            if not readable:
                missing.append(key)
        return {"missing": missing, "instance": self.instance_id}

    def rpc_reconstruct_fragment(self, msg: Message) -> Generator:
        """Rebuild one erasure-coded fragment locally from named sources.

        Delegated to the consistency protocol: only protocols that manage
        fragments (:class:`repro.ec.protocol.ECProtocol`) implement it.
        """
        handler = getattr(self.protocol, "on_reconstruct_fragment", None)
        if handler is None:
            raise TieraError(
                f"{self.instance_id}: protocol {self.protocol.name!r} "
                f"does not reconstruct fragments")
        self.note_request(msg.args.get("origin", msg.src))
        result = yield from handler(self, msg.args)
        return result

    def rpc_manifest_remap(self, msg: Message) -> Generator:
        """Apply a fragment-map delta to a locally held EC manifest."""
        handler = getattr(self.protocol, "on_manifest_remap", None)
        if handler is None:
            raise TieraError(
                f"{self.instance_id}: protocol {self.protocol.name!r} "
                f"does not hold EC manifests")
        result = yield from handler(self, msg.args)
        return result

    def rpc_peer_get(self, msg: Message) -> Generator:
        data, meta, record = yield from self.read_version(
            msg.args["key"], msg.args.get("version"))
        return {"data": data, "version": meta.version,
                "latest_local": record.latest_version,
                "last_modified": meta.last_modified,
                "origin": meta.origin}

    def rpc_peer_has(self, msg: Message) -> Generator:
        yield self.sim.timeout(METADATA_WRITE_LATENCY)
        record = self.meta.get_record(msg.args["key"])
        return {"latest": record.latest_version if record else 0}

    def rpc_probe(self, msg: Message) -> Generator:
        yield self.sim.timeout(0.00005)
        return {"t": self.sim.now, "instance": self.instance_id}

    def rpc_list_keys(self, msg: Message) -> Generator:
        """Keys and latest versions held here (used for replica re-sync)."""
        yield self.sim.timeout(METADATA_WRITE_LATENCY)
        listing = [(rec.key, rec.latest_version) for rec in self.meta.records()]
        return {"keys": listing}

    def rpc_stats(self, msg: Message) -> Generator:
        yield self.sim.timeout(METADATA_WRITE_LATENCY)
        return {
            "instance": self.instance_id,
            "region": self.region,
            "objects": self.meta.record_count(),
            "puts_from_app": self.puts_from_app,
            "gets_from_app": self.gets_from_app,
            "tiers": {name: {"used": b.used_bytes, "objects": len(b)}
                      for name, b in self.tiers.items()},
        }

    # -- raw tier access (modular instances, §3.2.2) -----------------------
    def rpc_tier_put(self, msg: Message) -> Generator:
        backend = self.tier(msg.args["tier"])
        yield from backend.write(msg.args["skey"], msg.args["data"])
        return {"stored": True}

    def rpc_tier_get(self, msg: Message) -> Generator:
        backend = self.tier(msg.args["tier"])
        data = yield from backend.read(msg.args["skey"])
        return {"data": data}

    def rpc_tier_delete(self, msg: Message) -> Generator:
        backend = self.tier(msg.args["tier"])
        skey = msg.args["skey"]
        if skey in backend:
            yield from backend.delete(skey)
            return {"deleted": True}
        return {"deleted": False}

    def rpc_tier_has(self, msg: Message) -> Generator:
        yield self.sim.timeout(METADATA_WRITE_LATENCY)
        backend = self.tier(msg.args["tier"])
        return {"has": msg.args["skey"] in backend}

    # -- control plane (driven by Wiera's Tiera Instance Manager) -----------
    def rpc_ctl_close_gate(self, msg: Message) -> Generator:
        """Block new application requests (consistency switch in progress)."""
        yield self.sim.timeout(0.00005)
        self.gate.close()
        return {"closed": True}

    def rpc_ctl_open_gate(self, msg: Message) -> Generator:
        yield self.sim.timeout(0.00005)
        self.gate.open()
        return {"opened": True}

    def rpc_ctl_drain(self, msg: Message) -> Generator:
        """Apply all in-progress and queued operations before a policy
        change ("all operations in progress (or queued) ... applied
        first", §3.3.2)."""
        while self.inflight > 0:
            yield self.sim.timeout(0.005)
        yield from self.protocol.drain(self)
        # Report what is *still* queued so the caller (the TIM's
        # switch_consistency) can refuse to silently drop it.
        return {"drained": True,
                "pending": self.protocol.pending_count(self)}

    def rpc_ctl_set_protocol(self, msg: Message) -> Generator:
        yield self.sim.timeout(0.0001)
        old = self.protocol
        old.detach(self)
        self.protocol = msg.args["protocol"]
        self.protocol.attach(self)
        return {"protocol": self.protocol.name, "previous": old.name}

    def rpc_ctl_set_peers(self, msg: Message) -> Generator:
        """Install the peer table propagated by the TIM (step 6 of §4.1)."""
        yield self.sim.timeout(0.0001)
        self.peers = dict(msg.args["peers"])
        self.peers.pop(self.instance_id, None)
        return {"peers": sorted(self.peers)}

    def rpc_ctl_add_tier(self, msg: Message) -> Generator:
        """Attach an externally-built tier (e.g. a shared InstanceTier)."""
        yield self.sim.timeout(0.0001)
        name, backend = msg.args["name"], msg.args["backend"]
        if name in self.tiers:
            raise TieraError(f"{self.instance_id}: tier {name!r} exists")
        self.tiers[name] = backend
        return {"added": name}

    def rpc_ctl_set_redirect(self, msg: Message) -> Generator:
        """Install/clear a get-forwarding redirect (load balancing)."""
        yield self.sim.timeout(0.00005)
        peer_id = msg.args.get("peer")
        if peer_id is None:
            self.get_redirect = None
        else:
            self.get_redirect = (peer_id, float(msg.args["fraction"]))
        return {"redirect": self.get_redirect}

    def rpc_ctl_set_shard(self, msg: Message) -> Generator:
        """Install the shard-ownership guard (epoch/redirect protocol)."""
        yield self.sim.timeout(0.00005)
        self.shard_guard = msg.args["guard"]
        return {"shard": getattr(self.shard_guard, "shard_id", None),
                "epoch": getattr(self.shard_guard, "epoch", None)}

    def rpc_ctl_set_handoff(self, msg: Message) -> Generator:
        """Open/close the dual-write window of a live rebalance."""
        yield self.sim.timeout(0.00005)
        self.shard_handoff = msg.args.get("handoff")
        return {"handoff": self.shard_handoff is not None}

    def rpc_ctl_migrate_keys(self, msg: Message) -> Generator:
        """Push the latest local version of each key to every destination
        node (shard-rebalance bulk copy; bytes flow instance→instance,
        Wiera stays off the data path).  Returns which keys landed."""
        dests = msg.args["dest"]
        batch_bytes = msg.args.get("batch_bytes", 0.0)
        moved, failed = [], []
        payload: list[tuple[str, dict, int]] = []
        for key in msg.args["keys"]:
            record = self.meta.get_record(key)
            meta = record.latest() if record is not None else None
            if meta is None:
                moved.append(key)   # nothing left to push: vacuously moved
                continue
            try:
                args = yield from self.replica_args(key, meta.version)
            except ObjectMissingError:
                moved.append(key)
                continue
            if batch_bytes > 0:
                payload.append((key, args, len(args["data"]) + 512))
                continue
            delivered = True
            for node in dests:
                try:
                    yield self.node.call(node, "replica_update", args,
                                         size=len(args["data"]) + 512)
                except Exception:
                    delivered = False
            (moved if delivered else failed).append(key)
        if payload:
            undelivered = yield from self._migrate_batched(
                dests, payload, batch_bytes)
            for key, _args, _size in payload:
                (failed if key in undelivered else moved).append(key)
        return {"moved": moved, "failed": failed,
                "instance": self.instance_id}

    def _migrate_batched(self, dests, payload: list,
                         batch_bytes: float) -> Generator:
        """Bulk-copy path: one size-bounded batch RPC per destination
        instead of one RPC per (key, dest).  Returns the keys that failed
        to land on at least one destination; per-entry batch results keep
        partial failure attributable to individual keys."""
        undelivered: set[str] = set()
        batch: list[tuple[str, dict, int]] = []
        batch_keys: list[str] = []
        batch_size = 0
        batches: list[tuple[list, list]] = [(batch, batch_keys)]
        for key, args, size in payload:
            if batch and batch_size + size > batch_bytes:
                batch, batch_keys, batch_size = [], [], 0
                batches.append((batch, batch_keys))
            batch.append(("replica_update", args, size))
            batch_keys.append(key)
            batch_size += size
        for node in dests:
            for entries, keys in batches:
                try:
                    results = yield self.node.call_batch(node, entries)
                except Exception:
                    undelivered.update(keys)   # transport: whole batch lost
                    continue
                for key, res in zip(keys, results):
                    if not res.get("ok"):
                        undelivered.add(key)
        return undelivered

    def rpc_ctl_purge_misowned(self, msg: Message) -> Generator:
        """Drop local copies of keys the (new) shard guard assigns
        elsewhere — run after a rebalance cutover has landed them on
        their new owner, so ceded ranges don't linger as stale state."""
        yield self.sim.timeout(METADATA_WRITE_LATENCY)
        guard = self.shard_guard
        purged = 0
        if guard is None:
            return {"purged": 0}
        for record in list(self.meta.records()):
            if not guard.owns(record.key):
                yield from self.local_remove(record.key)
                purged += 1
        return {"purged": purged}

    def rpc_ctl_demote_cold(self, msg: Message) -> Generator:
        """Move versions idle for >= ``age`` seconds to ``to_tier``;
        returns the demoted (key, version) pairs."""
        age, to_tier = msg.args["age"], msg.args["to_tier"]
        bandwidth = msg.args.get("bandwidth")
        now = self.sim.now
        demoted = []
        limiter = (BandwidthLink(self.sim, bandwidth) if bandwidth else None)
        for record in list(self.meta.records()):
            meta = record.latest()
            if meta is None or now - meta.last_accessed < age:
                continue
            if meta.locations == {to_tier}:
                continue
            if limiter is not None:
                yield from limiter.transmit(meta.stored_size or meta.size)
            yield from self.move_version(record.key, meta.version, to_tier)
            demoted.append((record.key, meta.version))
        return {"demoted": demoted}

    def rpc_ctl_adopt_remote_cold(self, msg: Message) -> Generator:
        """Drop local bytes for the given versions and point their location
        at a shared remote tier (the centralized cold store of §5.3)."""
        tier_name = msg.args["tier"]
        shared = self.tier(tier_name)
        adopted = 0
        for key, version in msg.args["objects"]:
            record = self.meta.get_record(key)
            if record is None or version not in record.versions:
                continue
            meta = record.versions[version]
            skey = storage_key(key, version)
            for loc in list(meta.locations):
                backend = self.tiers.get(loc)
                if backend is not None and loc != tier_name and skey in backend:
                    yield from backend.delete(skey)
                meta.locations.discard(loc)
            if hasattr(shared, "mark_known"):
                shared.mark_known(skey)
            meta.locations.add(tier_name)
            adopted += 1
        yield self.sim.timeout(METADATA_WRITE_LATENCY)
        return {"adopted": adopted}

    def __repr__(self) -> str:
        return (f"<TieraInstance {self.instance_id}@{self.region} "
                f"policy={self.policy.name} tiers={list(self.tiers)}>")
