"""Tiera/Wiera object data model.

Objects are uninterpreted byte sequences addressed by a globally unique
key.  They are immutable: a "modification" creates a new *version* (the
Wiera extension of §3.2.1).  Each version carries the metadata attributes
the paper lists — size, access count, dirty bit, created/modified/accessed
times, and the set of tiers currently holding its bytes — plus an encoding
chain recording compress/encrypt transformations.  Objects (not versions)
carry the application-assigned *tags* used to define object classes for
policies (e.g. a "tmp" tag routed to volatile storage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


def storage_key(key: str, version: int) -> str:
    """The key under which one version's bytes live inside a tier."""
    return f"{key}#v{version}"


@dataclass
class VersionMeta:
    """Metadata for one immutable version of an object."""

    version: int
    size: int
    created_at: float
    last_modified: float
    last_accessed: float
    access_count: int = 0
    dirty: bool = False
    locations: set[str] = field(default_factory=set)
    encodings: tuple[str, ...] = ()   # applied transforms, outermost last
    stored_size: int = 0              # on-tier size after transforms
    origin: str = ""                  # region/instance that created it

    def touch(self, now: float) -> None:
        self.last_accessed = now
        self.access_count += 1

    def newer_than(self, other: "VersionMeta") -> bool:
        """Last-write-wins ordering used for conflict resolution (§4.2)."""
        if self.version != other.version:
            return self.version > other.version
        return self.last_modified > other.last_modified

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "size": self.size,
            "created_at": self.created_at,
            "last_modified": self.last_modified,
            "last_accessed": self.last_accessed,
            "access_count": self.access_count,
            "dirty": self.dirty,
            "locations": sorted(self.locations),
            "encodings": list(self.encodings),
            "stored_size": self.stored_size,
            "origin": self.origin,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "VersionMeta":
        return cls(
            version=d["version"], size=d["size"], created_at=d["created_at"],
            last_modified=d["last_modified"], last_accessed=d["last_accessed"],
            access_count=d.get("access_count", 0), dirty=d.get("dirty", False),
            locations=set(d.get("locations", ())),
            encodings=tuple(d.get("encodings", ())),
            stored_size=d.get("stored_size", 0), origin=d.get("origin", ""))

    def wire_summary(self) -> dict:
        """Fields shipped alongside replica updates for conflict handling."""
        return {"version": self.version, "last_modified": self.last_modified,
                "size": self.size, "origin": self.origin}


@dataclass
class ObjectRecord:
    """All versions and object-level metadata for one key."""

    key: str
    versions: dict[int, VersionMeta] = field(default_factory=dict)
    tags: set[str] = field(default_factory=set)
    latest_version: int = 0

    def has_version(self, version: int) -> bool:
        return version in self.versions

    def latest(self) -> Optional[VersionMeta]:
        if self.latest_version and self.latest_version in self.versions:
            return self.versions[self.latest_version]
        return max(self.versions.values(), key=lambda m: m.version, default=None)

    def version_list(self) -> list[int]:
        return sorted(self.versions)

    def add_version(self, meta: VersionMeta) -> None:
        self.versions[meta.version] = meta
        if meta.version > self.latest_version:
            self.latest_version = meta.version

    def drop_version(self, version: int) -> VersionMeta:
        meta = self.versions.pop(version)
        if version == self.latest_version:
            self.latest_version = max(self.versions, default=0)
        return meta

    def next_version(self) -> int:
        return self.latest_version + 1

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "tags": sorted(self.tags),
            "latest_version": self.latest_version,
            "versions": {str(v): m.to_dict() for v, m in self.versions.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ObjectRecord":
        rec = cls(key=d["key"], tags=set(d.get("tags", ())),
                  latest_version=d.get("latest_version", 0))
        for v, meta in d.get("versions", {}).items():
            rec.versions[int(v)] = VersionMeta.from_dict(meta)
        return rec
