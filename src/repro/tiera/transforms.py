"""Byte transformations for the compress/encrypt responses.

Transforms are named, composable and reversible; a version's metadata
records its encoding chain so the read path can decode in reverse order.
Encryption is a keyed XOR keystream (SHA-256 in counter mode) — not meant
to be cryptographically reviewed, but it is a real, key-dependent,
invertible transformation over the stored bytes, which is what the policy
mechanism needs.
"""

from __future__ import annotations

import hashlib
import zlib


class TransformError(RuntimeError):
    pass


def _keystream(key: str, nbytes: int) -> bytes:
    out = bytearray()
    counter = 0
    seed = key.encode()
    while len(out) < nbytes:
        out.extend(hashlib.sha256(seed + counter.to_bytes(8, "little")).digest())
        counter += 1
    return bytes(out[:nbytes])


def encode(name: str, data: bytes, keyring: dict[str, str] | None = None,
           level: int = 6) -> bytes:
    """Apply transform ``name`` ("zlib" or "xor:<key_id>")."""
    if name == "zlib":
        return zlib.compress(data, level)
    if name.startswith("xor:"):
        key_id = name.split(":", 1)[1]
        secret = (keyring or {}).get(key_id)
        if secret is None:
            raise TransformError(f"no key {key_id!r} in keyring")
        stream = _keystream(secret, len(data))
        return bytes(a ^ b for a, b in zip(data, stream))
    raise TransformError(f"unknown transform {name!r}")


def decode(name: str, data: bytes, keyring: dict[str, str] | None = None) -> bytes:
    if name == "zlib":
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise TransformError(f"corrupt zlib payload: {exc}") from exc
    if name.startswith("xor:"):
        return encode(name, data, keyring)  # XOR is its own inverse
    raise TransformError(f"unknown transform {name!r}")


def decode_chain(encodings: tuple[str, ...], data: bytes,
                 keyring: dict[str, str] | None = None) -> bytes:
    """Undo a full encoding chain (outermost transform last in the tuple)."""
    for name in reversed(encodings):
        data = decode(name, data, keyring)
    return data
