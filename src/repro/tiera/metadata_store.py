"""BerkeleyDB-substitute metadata store.

The paper persists all object metadata in BerkeleyDB.  We provide the same
role: an ordered key/value store with prefix cursors and JSON
checkpoint/restore, holding :class:`~repro.tiera.objects.ObjectRecord`
entries (and any other instance state a policy wants durable).
"""

from __future__ import annotations

import bisect
import json
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.tiera.objects import ObjectRecord


class MetadataStore:
    """Sorted in-memory KV store with prefix scans and JSON persistence."""

    def __init__(self, path: Optional[str | Path] = None):
        self._data: dict[str, Any] = {}
        self._sorted_keys: list[str] = []
        self._keys_dirty = False
        self.path = Path(path) if path else None
        if self.path and self.path.exists():
            self.load()

    # -- basic KV ---------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        if key not in self._data:
            self._keys_dirty = True
        self._data[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def delete(self, key: str) -> None:
        if self._data.pop(key, None) is not None:
            self._keys_dirty = True

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def _keys(self) -> list[str]:
        if self._keys_dirty:
            self._sorted_keys = sorted(self._data)
            self._keys_dirty = False
        return self._sorted_keys

    def cursor(self, prefix: str = "") -> Iterator[tuple[str, Any]]:
        """Iterate (key, value) pairs with keys starting with ``prefix``,
        in key order — the BerkeleyDB btree-cursor idiom."""
        keys = self._keys()
        start = bisect.bisect_left(keys, prefix)
        for i in range(start, len(keys)):
            key = keys[i]
            if not key.startswith(prefix):
                break
            if key in self._data:  # tolerate deletion during iteration
                yield key, self._data[key]

    # -- object records ---------------------------------------------------
    _OBJ_PREFIX = "obj/"

    def put_record(self, record: ObjectRecord) -> None:
        self.put(self._OBJ_PREFIX + record.key, record)

    def get_record(self, key: str) -> Optional[ObjectRecord]:
        return self.get(self._OBJ_PREFIX + key)

    def delete_record(self, key: str) -> None:
        self.delete(self._OBJ_PREFIX + key)

    def records(self) -> Iterator[ObjectRecord]:
        for _, value in self.cursor(self._OBJ_PREFIX):
            yield value

    def record_count(self) -> int:
        return sum(1 for _ in self.cursor(self._OBJ_PREFIX))

    # -- persistence -----------------------------------------------------------
    def checkpoint(self, path: Optional[str | Path] = None) -> Path:
        """Serialize to JSON.  ObjectRecords round-trip; other values must
        be JSON-encodable."""
        target = Path(path) if path else self.path
        if target is None:
            raise ValueError("no checkpoint path configured")
        payload = {}
        for key, value in self._data.items():
            if isinstance(value, ObjectRecord):
                payload[key] = {"__record__": value.to_dict()}
            else:
                payload[key] = value
        target.write_text(json.dumps(payload))
        return target

    def load(self, path: Optional[str | Path] = None) -> None:
        source = Path(path) if path else self.path
        if source is None:
            raise ValueError("no checkpoint path configured")
        payload = json.loads(source.read_text())
        self._data.clear()
        for key, value in payload.items():
            if isinstance(value, dict) and "__record__" in value:
                self._data[key] = ObjectRecord.from_dict(value["__record__"])
            else:
                self._data[key] = value
        self._keys_dirty = True
