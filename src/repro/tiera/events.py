"""Policy event descriptors.

An *event* is "the occurrence of some condition" (§2.1).  These dataclasses
are declarative descriptions; the policy engine inside
:class:`~repro.tiera.instance.TieraInstance` (and, for the monitoring
events, :mod:`repro.core.monitoring`) decides when each fires.

Tiera's original events: action (insert/get), timer, and threshold
(tier-filled).  Wiera (§3.2.3) adds LatencyMonitoring, RequestsMonitoring
and ColdDataMonitoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class PolicyEvent:
    """Base class; exists so rules can be typed uniformly."""


@dataclass(frozen=True)
class InsertEvent(PolicyEvent):
    """Fires when an object is inserted.

    ``tier=None`` means "on every put, before placement" — such rules
    typically contain the ``store`` response that decides placement
    (Figure 1(a)).  ``tier="tier1"`` means "after bytes landed in tier1"
    (the write-through trigger of Figure 1(b)).
    """

    tier: Optional[str] = None


@dataclass(frozen=True)
class OperationEvent(PolicyEvent):
    """Fires on a named API operation ("get", "put", "remove", ...)."""

    op: str = "get"
    tier: Optional[str] = None


@dataclass(frozen=True)
class TimerEvent(PolicyEvent):
    """Fires every ``period`` seconds (Figure 1(a)'s write-back flush)."""

    period: float = 60.0


@dataclass(frozen=True)
class FilledEvent(PolicyEvent):
    """Fires when a tier's occupancy crosses ``fraction`` (edge-triggered,
    re-armed once occupancy drops back below)."""

    tier: str = "tier1"
    fraction: float = 0.5


@dataclass(frozen=True)
class ColdDataEvent(PolicyEvent):
    """Wiera ColdDataMonitoring: an object hasn't been accessed for ``age``
    seconds.  A dedicated scanner thread checks every ``check_interval``."""

    age: float = 120 * 3600.0
    check_interval: float = 600.0
    tier: Optional[str] = None   # restrict to objects resident on this tier


@dataclass(frozen=True)
class LatencyThresholdEvent(PolicyEvent):
    """Wiera LatencyMonitoring: ``op`` operations have exceeded ``latency``
    continuously for ``period`` seconds (Figure 5(a))."""

    op: str = "put"
    latency: float = 0.8
    period: float = 30.0


@dataclass(frozen=True)
class RequestsThresholdEvent(PolicyEvent):
    """Wiera RequestsMonitoring: some instance forwarded at least as many
    requests as the primary served directly, sustained for ``period``
    seconds, measured over a sliding ``window`` (Figure 5(b))."""

    period: float = 15.0
    window: float = 30.0
