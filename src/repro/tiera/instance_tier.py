"""Modular instances (§3.2.2): a Tiera instance used as a storage tier.

An :class:`InstanceTier` plugs into a local instance's tier table but its
reads/writes are RPCs against a *remote* Tiera instance's tier — this is
how INTERMEDIATE-DATA encapsulates RAW-BIG-DATA-INSTANCES as a read-only
tier, and how several regions share one centralized S3-IA tier for cold
data (§5.3 / Fig. 10).

It quacks like a :class:`~repro.storage.backend.StorageBackend` for the
operations the policy engine uses; membership is tracked through a local
known-keys set (updated on writes/deletes, and markable by global policies
that rewire object locations without moving bytes).
"""

from __future__ import annotations

from typing import Generator

from repro.sim.rpc import RpcNode
from repro.storage.backend import ObjectMissingError, StorageError
from repro.storage.profiles import TierProfile


class InstanceTier:
    """A remote Tiera instance's tier, viewed as a local tier."""

    def __init__(self, sim, owner_node: RpcNode, remote_node: RpcNode,
                 remote_tier: str, name: str = "",
                 remote_profile: TierProfile | None = None,
                 read_only: bool = False,
                 estimated_oneway: float = 0.05):
        self.sim = sim
        self.owner_node = owner_node
        self.remote_node = remote_node
        self.remote_tier = remote_tier
        self.name = name or f"{remote_node.name}:{remote_tier}"
        self.read_only = read_only
        self.region = ""
        base = remote_profile.read_latency if remote_profile else 0.001
        wbase = remote_profile.write_latency if remote_profile else 0.001
        # Synthesized profile: remote tier latency plus the network RTT, so
        # read-preference ordering treats this tier honestly.
        self.profile = TierProfile(
            name=self.name, kind="instance",
            read_latency=base + 2 * estimated_oneway,
            write_latency=wbase + 2 * estimated_oneway,
            read_throughput=(remote_profile.read_throughput
                             if remote_profile else 100 * 1024 * 1024),
            write_throughput=(remote_profile.write_throughput
                              if remote_profile else 100 * 1024 * 1024),
            volatile=remote_profile.volatile if remote_profile else False,
            storage_price=(remote_profile.storage_price
                           if remote_profile else 0.0))
        self._known: set[str] = set()
        self.capacity = float(1 << 60)
        self.used_bytes = 0
        self.reads = 0
        self.writes = 0
        self.deletes = 0

    # -- membership -------------------------------------------------------
    def __contains__(self, skey: str) -> bool:
        return skey in self._known

    def __len__(self) -> int:
        return len(self._known)

    def mark_known(self, skey: str) -> None:
        """Record that the remote tier holds ``skey`` even though this
        instance did not write it (used when a global policy centralizes
        cold data written elsewhere)."""
        self._known.add(skey)

    @property
    def free_bytes(self) -> float:
        return self.capacity - self.used_bytes

    @property
    def fill_fraction(self) -> float:
        return 0.0

    # -- data path -------------------------------------------------------------
    def write(self, skey: str, data: bytes) -> Generator:
        if self.read_only:
            raise StorageError(f"{self.name} is a read-only instance tier")
        result = yield self.owner_node.call(
            self.remote_node, "tier_put",
            {"tier": self.remote_tier, "skey": skey, "data": bytes(data)},
            size=len(data) + 256)
        if not result.get("stored"):
            raise StorageError(f"{self.name}: remote store failed")
        self._known.add(skey)
        self.used_bytes += len(data)
        self.writes += 1

    def read(self, skey: str) -> Generator:
        if skey not in self._known:
            raise ObjectMissingError(f"{self.name}: no object {skey!r}")
        result = yield self.owner_node.call(
            self.remote_node, "tier_get",
            {"tier": self.remote_tier, "skey": skey})
        self.reads += 1
        return result["data"]

    def delete(self, skey: str) -> Generator:
        if self.read_only:
            raise StorageError(f"{self.name} is a read-only instance tier")
        if skey not in self._known:
            raise ObjectMissingError(f"{self.name}: no object {skey!r}")
        yield self.owner_node.call(
            self.remote_node, "tier_delete",
            {"tier": self.remote_tier, "skey": skey})
        self._known.discard(skey)
        self.deletes += 1

    def grow(self, additional: float) -> None:
        raise StorageError("instance tiers cannot be grown locally")

    def wipe(self) -> None:
        self._known.clear()
        self.used_bytes = 0

    def __repr__(self) -> str:
        return f"<InstanceTier {self.name} -> {self.remote_node.name}>"
