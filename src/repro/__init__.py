"""Wiera reproduction: flexible multi-tiered geo-distributed cloud storage.

A faithful, fully-offline reimplementation of the HPDC'16 Wiera system on
a deterministic discrete-event simulator.  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured results.

Quickstart::

    from repro import build_deployment, GlobalPolicySpec, RegionPlacement
    from repro.tiera.policy import write_back_policy
    from repro.net import US_EAST, US_WEST

    dep = build_deployment([US_EAST, US_WEST])
    spec = GlobalPolicySpec(
        name="demo",
        placements=(RegionPlacement(US_EAST, write_back_policy()),
                    RegionPlacement(US_WEST, write_back_policy())),
        consistency="multi_primaries")
    instances = dep.start_wiera_instance("demo", spec)
    client = dep.add_client(US_WEST, instances=instances)

    def app():
        yield from client.put("hello", b"world")
        result = yield from client.get("hello")
        assert result["data"] == b"world"

    dep.drive(app())
"""

from repro.bench.harness import Deployment, build_deployment, drive
from repro.autoscale import Autoscaler
from repro.core import (
    AutoscaleSpec,
    ChangePrimarySpec,
    ColdDataSpec,
    DynamicConsistencySpec,
    FailureSpec,
    GlobalPolicySpec,
    RedundancySpec,
    RegionPlacement,
    ReplicaScaleSpec,
    ShardSpec,
    TierScaleSpec,
    WieraClient,
    WieraService,
)
from repro.faults import FaultEvent, FaultSchedule, RetryPolicy
from repro.obs import MetricsRegistry, Observability, get_obs
from repro.shard import HashRing, ShardHandle, ShardMap
from repro.sim import Simulator
from repro.net import Network

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "Network",
    "Observability",
    "MetricsRegistry",
    "get_obs",
    "Deployment",
    "build_deployment",
    "drive",
    "WieraService",
    "WieraClient",
    "GlobalPolicySpec",
    "RegionPlacement",
    "DynamicConsistencySpec",
    "ChangePrimarySpec",
    "ColdDataSpec",
    "FailureSpec",
    "ShardSpec",
    "RedundancySpec",
    "AutoscaleSpec",
    "ReplicaScaleSpec",
    "TierScaleSpec",
    "Autoscaler",
    "HashRing",
    "ShardHandle",
    "ShardMap",
    "FaultEvent",
    "FaultSchedule",
    "RetryPolicy",
    "__version__",
]
