"""repro.load — open-loop workload engine with client cohorts.

Closed-loop clients (``repro.workloads.ycsb``) measure latency; this
package measures *capacity*: deterministic arrival streams offer
operations at a configured rate whether or not the store keeps up, and
client cohorts aggregate thousands of modeled users into one kernel
process so million-user populations stay cheap.  Entirely off by
default — simulations that never construct a cohort are bit-identical
to builds without this package.
"""

from repro.load.arrivals import (
    ArrivalProcess,
    MmppProcess,
    PoissonProcess,
    TraceReplay,
    constant_rate,
    diurnal_rate,
    flash_crowd_rate,
    modeled_users_rate,
    poisson_trace,
    ramp_rate,
)
from repro.load.cohort import ClientCohort, CohortSpec, CohortStats
from repro.load.engine import LoadEngine, build_cohorts
from repro.load.scenarios import (
    SCENARIOS,
    Scenario,
    ShiftingHotspot,
    diurnal,
    failover_storm,
    flash_crowd,
    hotspot_shift,
)

__all__ = [
    "ArrivalProcess",
    "ClientCohort",
    "CohortSpec",
    "CohortStats",
    "LoadEngine",
    "MmppProcess",
    "PoissonProcess",
    "SCENARIOS",
    "Scenario",
    "ShiftingHotspot",
    "TraceReplay",
    "build_cohorts",
    "constant_rate",
    "diurnal",
    "diurnal_rate",
    "failover_storm",
    "flash_crowd",
    "flash_crowd_rate",
    "hotspot_shift",
    "modeled_users_rate",
    "poisson_trace",
    "ramp_rate",
]
