"""Arrival models for the open-loop workload engine.

A closed-loop client issues its next operation only after the previous
one completes, so measured throughput is bounded by latency and says
nothing about what the store can absorb.  An *open-loop* driver instead
generates operations from an arrival process at a configured rate,
whether or not earlier operations have finished — the load the system
*would* see from a real user population.

Two orthogonal pieces compose an arrival stream:

* a **rate shape** — a plain ``rate_fn(t) -> ops/sec`` describing the
  offered load over simulated time (constant, ramp, flash crowd, diurnal
  curve), plus the ``peak_rate`` bound the thinning sampler needs;
* an **arrival process** — how individual arrivals are distributed
  around that rate: :class:`PoissonProcess` (memoryless),
  :class:`MmppProcess` (bursty, Markov-modulated), or
  :class:`TraceReplay` (explicit timestamps).

Processes sample via Lewis-Shedler thinning against ``peak_rate``, so
any bounded time-varying ``rate_fn`` yields an exact non-homogeneous
Poisson stream.  All draws come from the process's own bound generator
(see :meth:`RngRegistry.substream`), so cohorts never share stream state.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence, Tuple

from repro.util.rng import exponential_interarrival

RateFn = Callable[[float], float]

#: candidates examined per ``next_event`` call before handing control
#: back (arrived=False); bounds the synchronous scan through dead air
#: (e.g. the night-time trough of a diurnal curve with zero active users)
SCAN_LIMIT = 4096


# -- rate shapes -------------------------------------------------------------

def constant_rate(rate: float) -> Tuple[RateFn, float]:
    """A flat offered load of ``rate`` ops/sec."""
    if rate < 0:
        raise ValueError(f"rate must be >= 0, got {rate}")
    return (lambda t: rate), rate


def ramp_rate(start_rate: float, end_rate: float,
              t0: float, t1: float) -> Tuple[RateFn, float]:
    """Linear ramp from ``start_rate`` at ``t0`` to ``end_rate`` at ``t1``
    (flat outside the window)."""
    if t1 <= t0:
        raise ValueError(f"ramp needs t1 > t0, got [{t0}, {t1}]")
    span = t1 - t0

    def rate(t: float) -> float:
        if t <= t0:
            return start_rate
        if t >= t1:
            return end_rate
        return start_rate + (end_rate - start_rate) * (t - t0) / span

    return rate, max(start_rate, end_rate)


def flash_crowd_rate(base_rate: float, multiplier: float, at: float,
                     rise: float = 10.0, hold: float = 60.0,
                     fall: float = 30.0) -> Tuple[RateFn, float]:
    """Anna-style flash crowd: steady ``base_rate``, then a spike to
    ``base_rate * multiplier`` starting at ``at`` (linear rise over
    ``rise`` seconds, held ``hold`` seconds, linear decay over ``fall``)."""
    if multiplier < 1.0:
        raise ValueError(f"flash crowd multiplier must be >= 1: {multiplier}")
    peak = base_rate * multiplier

    def rate(t: float) -> float:
        if t < at or t >= at + rise + hold + fall:
            return base_rate
        if t < at + rise:
            return base_rate + (peak - base_rate) * (t - at) / rise
        if t < at + rise + hold:
            return peak
        done = (t - at - rise - hold) / fall
        return peak - (peak - base_rate) * done

    return rate, peak


def diurnal_rate(population, region: str,
                 rate_per_user: float) -> Tuple[RateFn, float]:
    """Offered load following a :class:`~repro.workloads.clients.
    GeoClientPopulation` activity curve: ``active_clients(region, t)``
    modeled users, each issuing ``rate_per_user`` ops/sec.  The curves
    peak region after region, so a multi-region cohort set produces the
    follow-the-sun load shift of the paper's Fig. 8 setup at population
    scale."""
    activity = population.activities[region]

    def rate(t: float) -> float:
        return activity.active_clients(t) * rate_per_user

    return rate, activity.max_clients * rate_per_user


# -- arrival processes -------------------------------------------------------

class ArrivalProcess:
    """Base: a stream of arrival instants sampled one gap at a time.

    ``bind`` attaches the per-cohort generator, rate shape, and start
    time; ``next_event(t)`` returns ``(dt, arrived)`` — sleep ``dt``
    seconds, and if ``arrived`` dispatch one operation.  ``arrived`` may
    be False when the process scanned a stretch of (near-)zero rate
    without finding an arrival, or ``(None, False)`` when the stream is
    exhausted (trace replay).  One process instance drives exactly one
    cohort: instances carry sampler state and must not be shared.
    """

    def __init__(self) -> None:
        self.rng = None
        self.rate_fn: Optional[RateFn] = None
        self.peak_rate = 0.0

    def bind(self, rng, rate_fn: RateFn, peak_rate: float,
             start: float = 0.0) -> None:
        if peak_rate <= 0:
            raise ValueError(f"peak_rate must be positive, got {peak_rate}")
        self.rng = rng
        self.rate_fn = rate_fn
        self.peak_rate = peak_rate
        self.start = start

    def next_event(self, t: float) -> Tuple[Optional[float], bool]:
        raise NotImplementedError


class PoissonProcess(ArrivalProcess):
    """Non-homogeneous Poisson arrivals via thinning against peak_rate."""

    def next_event(self, t: float) -> Tuple[Optional[float], bool]:
        rng = self.rng
        peak = self.peak_rate
        rate_fn = self.rate_fn
        dt = 0.0
        for _ in range(SCAN_LIMIT):
            dt += exponential_interarrival(rng, peak)
            rate = rate_fn(t + dt)
            if rate >= peak or rng.random() < rate / peak:
                return dt, True
        return dt, False


class MmppProcess(ArrivalProcess):
    """Markov-modulated Poisson: bursty arrivals with two regimes.

    The process alternates between a *normal* state (factor 1.0 on the
    bound rate shape) and a *burst* state (factor ``burst_factor``);
    sojourn times in each state are exponential with means
    ``mean_normal`` / ``mean_burst``.  The long-run offered rate is
    therefore ``rate_fn`` scaled by the stationary mean factor — use
    :meth:`mean_factor` to normalize if the *average* rate matters more
    than the burst amplitude.
    """

    def __init__(self, burst_factor: float = 8.0, mean_normal: float = 20.0,
                 mean_burst: float = 2.0):
        super().__init__()
        if burst_factor < 1.0:
            raise ValueError(f"burst_factor must be >= 1: {burst_factor}")
        if mean_normal <= 0 or mean_burst <= 0:
            raise ValueError("state dwell means must be positive")
        self.burst_factor = burst_factor
        self.mean_dwell = (mean_normal, mean_burst)
        self._state = 0           # 0 = normal, 1 = burst
        self._state_until = None  # absolute time the current sojourn ends

    def mean_factor(self) -> float:
        """Stationary mean of the modulation factor (for normalization)."""
        normal, burst = self.mean_dwell
        return (normal * 1.0 + burst * self.burst_factor) / (normal + burst)

    def _factor_at(self, t: float) -> float:
        """Advance the state timeline to cover ``t`` and return its factor.

        Sojourn draws are consumed in timeline order from the bound
        generator, so the regime sequence is deterministic per cohort.
        """
        if self._state_until is None:
            self._state_until = self.start + float(
                self.rng.exponential(self.mean_dwell[self._state]))
        while t >= self._state_until:
            self._state = 1 - self._state
            self._state_until += float(
                self.rng.exponential(self.mean_dwell[self._state]))
        return self.burst_factor if self._state else 1.0

    def next_event(self, t: float) -> Tuple[Optional[float], bool]:
        rng = self.rng
        cap = self.peak_rate * self.burst_factor
        rate_fn = self.rate_fn
        dt = 0.0
        for _ in range(SCAN_LIMIT):
            dt += exponential_interarrival(rng, cap)
            when = t + dt
            rate = rate_fn(when) * self._factor_at(when)
            if rate >= cap or rng.random() < rate / cap:
                return dt, True
        return dt, False


class TraceReplay(ArrivalProcess):
    """Replay explicit arrival offsets (seconds from cohort start).

    Offsets must be non-decreasing.  With ``loop=True`` the trace repeats
    end-to-end (offset origin shifting by the trace span each lap), which
    turns a measured one-hour trace into an endless workload.
    """

    def __init__(self, offsets: Sequence[float], loop: bool = False):
        super().__init__()
        self.offsets = [float(x) for x in offsets]
        if any(b < a for a, b in zip(self.offsets, self.offsets[1:])):
            raise ValueError("trace offsets must be non-decreasing")
        if loop and not self.offsets:
            raise ValueError("cannot loop an empty trace")
        if loop and self.offsets[-1] <= 0:
            raise ValueError("looping needs a positive trace span")
        self.loop = loop
        self._index = 0
        self._lap_base = 0.0

    def bind(self, rng, rate_fn: RateFn, peak_rate: float,
             start: float = 0.0) -> None:
        # Traces carry their own schedule; the rate shape is unused, so
        # accept the degenerate peak_rate=0 from an unspecified shape.
        self.rng = rng
        self.rate_fn = rate_fn
        self.peak_rate = peak_rate
        self.start = start

    def next_event(self, t: float) -> Tuple[Optional[float], bool]:
        if self._index >= len(self.offsets):
            if not self.loop:
                return None, False
            self._lap_base += self.offsets[-1]
            self._index = 0
        when = self.start + self._lap_base + self.offsets[self._index]
        self._index += 1
        return max(0.0, when - t), True


def poisson_trace(rng, rate: float, horizon: float) -> list[float]:
    """A pre-sampled Poisson arrival-offset list (for :class:`TraceReplay`
    round-trips and tests)."""
    offsets = []
    t = exponential_interarrival(rng, rate)
    while t < horizon:
        offsets.append(t)
        t += exponential_interarrival(rng, rate)
    return offsets


def modeled_users_rate(users: int, rate_per_user: float) -> Tuple[RateFn, float]:
    """The rate shape of ``users`` steady users at ``rate_per_user`` each —
    the cohort aggregation identity: one arrival stream at
    ``users * rate_per_user`` is statistically the superposition of
    ``users`` independent per-user Poisson streams."""
    if users < 1:
        raise ValueError(f"a cohort models at least one user, got {users}")
    if rate_per_user <= 0 or not math.isfinite(rate_per_user):
        raise ValueError(f"rate_per_user must be positive/finite: "
                         f"{rate_per_user}")
    return constant_rate(users * rate_per_user)
