"""The load engine: a fleet of cohorts run and reported as one unit.

:class:`LoadEngine` owns the cohorts of one experiment — start them
together, run the simulation for a measured window, stop them together,
and aggregate per-cohort reports into one offered-vs-achieved summary.
Stopping snapshots each cohort's stats *before* the grace drain, so the
summary reflects exactly the measurement window even though stragglers
are still completing.
"""

from __future__ import annotations

from typing import Optional

from repro.load.cohort import ClientCohort, CohortSpec


class LoadEngine:
    """All client cohorts of one experiment, driven together."""

    def __init__(self, sim):
        self.sim = sim
        self.cohorts: list[ClientCohort] = []
        self._by_name: dict[str, ClientCohort] = {}

    def add(self, cohort: ClientCohort) -> ClientCohort:
        if cohort.spec.name in self._by_name:
            raise ValueError(f"duplicate cohort name {cohort.spec.name!r}")
        self.cohorts.append(cohort)
        self._by_name[cohort.spec.name] = cohort
        return cohort

    def __getitem__(self, name: str) -> ClientCohort:
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self.cohorts)

    def __iter__(self):
        return iter(self.cohorts)

    @property
    def modeled_users(self) -> int:
        return sum(c.spec.users for c in self.cohorts)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        for cohort in self.cohorts:
            cohort.start()

    def stop(self) -> None:
        for cohort in self.cohorts:
            cohort.stop()

    def run(self, duration: float, grace: float = 0.0) -> dict:
        """Start every cohort, advance the simulation ``duration``
        sim-seconds, stop arrivals, optionally drain ``grace`` more
        seconds for in-flight stragglers, and return :meth:`report` for
        the measurement window."""
        self.start()
        self.sim.run(until=self.sim.now + duration)
        self.stop()
        report = self.report()
        if grace > 0:
            self.sim.run(until=self.sim.now + grace)
        return report

    # -- reporting ---------------------------------------------------------
    def report(self, elapsed: Optional[float] = None) -> dict:
        """Aggregate offered vs achieved load across every cohort.

        ``elapsed`` overrides the per-cohort windows for the aggregate
        rates (useful when cohorts started at different times).
        """
        cohorts = [c.report() for c in self.cohorts]
        window = (elapsed if elapsed is not None
                  else max((c.elapsed() for c in self.cohorts), default=0.0))
        return aggregate_reports(cohorts, self.modeled_users, window)


def aggregate_reports(cohorts: list[dict], modeled_users: int,
                      window: float) -> dict:
    """Combine per-cohort report dicts into one offered-vs-achieved
    summary.  Shared by :meth:`LoadEngine.report` and the parallel
    runner, which gathers the cohort dicts from worker processes — the
    aggregation is associative, so where the dicts came from doesn't
    matter."""
    offered = sum(c["offered"] for c in cohorts)
    achieved = sum(c["achieved"] for c in cohorts)
    errors = sum(c["errors"] for c in cohorts)
    shed = sum(c["shed"] for c in cohorts)
    discarded = sum(c["discarded"] for c in cohorts)
    acked_digest = 0
    for c in cohorts:
        acked_digest ^= c.get("acked_digest", 0)
    errors_by_type: dict[str, int] = {}
    for c in cohorts:
        for kind, n in c["errors_by_type"].items():
            errors_by_type[kind] = errors_by_type.get(kind, 0) + n
    window = max(window, 1e-12)
    return {
        "cohorts": len(cohorts),
        "modeled_users": modeled_users,
        "offered": offered,
        "achieved": achieved,
        "errors": errors,
        "errors_by_type": dict(sorted(errors_by_type.items())),
        "shed": shed,
        "discarded": discarded,
        "acked_digest": acked_digest,
        "elapsed": window,
        "offered_rate": offered / window,
        "achieved_rate": achieved / window,
        "per_cohort": cohorts,
    }


def build_cohorts(sim, client_for_region, specs: list[CohortSpec],
                  rng_registry) -> LoadEngine:
    """Assemble a LoadEngine from specs.

    ``client_for_region(region)`` returns the shared WieraClient a
    cohort in that region talks through; each cohort draws from its own
    ``load.cohort[name]`` substream, so cohort sets compose without
    perturbing each other's arrival sequences.
    """
    engine = LoadEngine(sim)
    for spec in specs:
        client = client_for_region(spec.region)
        rng = rng_registry.substream("load.cohort", spec.name)
        engine.add(ClientCohort(sim, client, spec, rng))
    return engine
