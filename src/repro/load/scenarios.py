"""Geo-scenario library: named load shapes worth reproducing.

Each builder returns a :class:`Scenario` — a set of
:class:`~repro.load.cohort.CohortSpec` entries plus an optional fault
hook — describing *what the world does to the store*, independent of any
particular deployment.  The bench harness turns a scenario into running
cohorts with :meth:`Deployment.add_cohort`; the ``faults`` hook, when
present, is called with the deployment to script the accompanying
infrastructure failures (see :func:`failover_storm`).

The shapes come straight from the motivating papers: Anna's flash crowd
(sudden 10x spikes the store must absorb), Wiera's Fig. 8 diurnal
follow-the-sun load (region curves from :mod:`repro.workloads.clients`
at population scale), hotspot-key shift (the Zipf head migrating through
the key space), and a multi-region failover storm (full offered load
continuing while a region dies and recovers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.load.arrivals import (
    constant_rate,
    diurnal_rate,
    flash_crowd_rate,
)
from repro.load.cohort import CohortSpec
from repro.workloads.clients import GeoClientPopulation
from repro.workloads.ycsb import YcsbWorkload


@dataclass
class Scenario:
    """A deployment-independent bundle of cohort specs (+ fault hook)."""

    name: str
    specs: list[CohortSpec] = field(default_factory=list)
    #: called with the Deployment after cohorts exist; returns a started
    #: FaultSchedule (or None) scripting the scenario's infrastructure side
    faults: Optional[Callable] = None
    notes: str = ""


def flash_crowd(regions: Sequence[str], users_per_region: int = 50_000,
                rate_per_user: float = 0.02, multiplier: float = 10.0,
                at: float = 60.0, rise: float = 10.0, hold: float = 60.0,
                fall: float = 30.0, crowd_region: Optional[str] = None,
                workload: Optional[YcsbWorkload] = None,
                **cohort_kw) -> Scenario:
    """Steady load everywhere; one region's crowd spikes ``multiplier``x.

    The spiking region (default: the first) carries a flash-crowd rate
    shape; the rest stay flat, so the run shows both the absorbing
    region's saturation behavior and the bystanders' steady latency.
    """
    crowd = crowd_region or regions[0]
    if crowd not in regions:
        raise ValueError(f"crowd_region {crowd!r} not in {list(regions)}")
    workload = workload or YcsbWorkload.workload_b()
    base = users_per_region * rate_per_user
    specs = []
    for region in regions:
        if region == crowd:
            rate_fn, peak = flash_crowd_rate(base, multiplier, at,
                                             rise=rise, hold=hold, fall=fall)
        else:
            rate_fn, peak = constant_rate(base)
        specs.append(CohortSpec(
            name=f"flash-{region}", region=region, users=users_per_region,
            rate_per_user=rate_per_user, workload=workload,
            rate_fn=rate_fn, peak_rate=peak, **cohort_kw))
    return Scenario(
        name="flash_crowd", specs=specs,
        notes=f"{crowd} spikes {multiplier}x at t={at}s "
              f"(rise {rise}s, hold {hold}s, fall {fall}s)")


def diurnal(regions: Sequence[str], users_per_region: int = 100_000,
            rate_per_user: float = 0.01, first_peak: float = 60.0,
            stagger: float = 120.0, sigma: float = 40.0,
            min_users_frac: float = 0.05,
            workload: Optional[YcsbWorkload] = None,
            population: Optional[GeoClientPopulation] = None,
            **cohort_kw) -> Scenario:
    """Follow-the-sun load: each region's offered rate follows its
    :class:`~repro.workloads.clients.RegionActivity` Gaussian, peaks
    staggered region after region — the Fig. 8 experiment's client
    behavior scaled from 10 real clients to ``users_per_region`` modeled
    users per region."""
    if population is None:
        population = GeoClientPopulation.staggered(
            list(regions), first_peak=first_peak, stagger=stagger,
            sigma=sigma, max_clients=users_per_region,
            min_clients=max(1, int(users_per_region * min_users_frac)))
    workload = workload or YcsbWorkload.workload_b()
    specs = []
    for region in regions:
        rate_fn, peak = diurnal_rate(population, region, rate_per_user)
        specs.append(CohortSpec(
            name=f"diurnal-{region}", region=region,
            users=population.activities[region].max_clients,
            rate_per_user=rate_per_user, workload=workload,
            rate_fn=rate_fn, peak_rate=peak, **cohort_kw))
    scenario = Scenario(
        name="diurnal", specs=specs,
        notes=f"peaks staggered {stagger}s apart starting t={first_peak}s")
    scenario.population = population
    return scenario


class ShiftingHotspot:
    """Key chooser whose hot range migrates through the record space.

    At any instant, ``hot_frac`` of arrivals target a contiguous window
    of ``hot_size`` records; every ``shift_every`` sim-seconds the window
    jumps to the next position (wrapping), modeling trending content —
    yesterday's hot keys go cold and a new set takes the head of the
    distribution.  Deterministic given the cohort rng and sim clock.
    """

    def __init__(self, rng, sim, record_count: int, hot_size: int,
                 hot_frac: float, shift_every: float):
        if not 0.0 <= hot_frac <= 1.0:
            raise ValueError(f"hot_frac must be in [0, 1]: {hot_frac}")
        if not 0 < hot_size <= record_count:
            raise ValueError(f"hot_size must be in (0, {record_count}]: "
                             f"{hot_size}")
        if shift_every <= 0:
            raise ValueError(f"shift_every must be positive: {shift_every}")
        self.rng = rng
        self.sim = sim
        self.record_count = record_count
        self.hot_size = hot_size
        self.hot_frac = hot_frac
        self.shift_every = shift_every

    def hot_base(self, t: float) -> int:
        epoch = int(t / self.shift_every)
        return (epoch * self.hot_size) % self.record_count

    def next(self) -> int:
        if self.rng.random() < self.hot_frac:
            base = self.hot_base(self.sim.now)
            return (base + int(self.rng.integers(self.hot_size))) \
                % self.record_count
        return int(self.rng.integers(self.record_count))


def hotspot_shift(regions: Sequence[str], users_per_region: int = 50_000,
                  rate_per_user: float = 0.01, hot_frac: float = 0.8,
                  hot_size: Optional[int] = None, shift_every: float = 60.0,
                  workload: Optional[YcsbWorkload] = None,
                  **cohort_kw) -> Scenario:
    """Constant offered load whose *key skew* moves: 80% of operations
    hit a small hot window that jumps every ``shift_every`` seconds."""
    workload = workload or YcsbWorkload.workload_b()
    size = hot_size or max(1, workload.record_count // 100)

    def chooser_factory(rng, sim):
        return ShiftingHotspot(rng, sim, workload.record_count, size,
                               hot_frac, shift_every)

    specs = [CohortSpec(
        name=f"hotspot-{region}", region=region, users=users_per_region,
        rate_per_user=rate_per_user, workload=workload,
        chooser_factory=chooser_factory, **cohort_kw)
        for region in regions]
    return Scenario(
        name="hotspot_shift", specs=specs,
        notes=f"{hot_frac:.0%} of ops on {size} keys, "
              f"window shifts every {shift_every}s")


def failover_storm(regions: Sequence[str], users_per_region: int = 50_000,
                   rate_per_user: float = 0.01, crash_at: float = 30.0,
                   crash_duration: float = 60.0,
                   victim_region: Optional[str] = None,
                   partition_pairs: Sequence[tuple] = (),
                   workload: Optional[YcsbWorkload] = None,
                   **cohort_kw) -> Scenario:
    """Full offered load keeps arriving while a region's Tiera server
    crashes (and optionally the WAN partitions), then recovers — the
    open-loop version of the Fig. 7 fault experiments: the crowd does
    not politely pause for the outage, so the report shows exactly how
    much offered load the surviving regions absorbed vs shed."""
    victim = victim_region or regions[-1]
    if victim not in regions:
        raise ValueError(f"victim_region {victim!r} not in {list(regions)}")
    workload = workload or YcsbWorkload.workload_b()
    specs = [CohortSpec(
        name=f"storm-{region}", region=region, users=users_per_region,
        rate_per_user=rate_per_user, workload=workload, **cohort_kw)
        for region in regions]

    def faults(dep):
        schedule = dep.fault_schedule(name="failover-storm")
        schedule.crash(crash_at, dep.server(victim),
                       duration=crash_duration)
        for a, b in partition_pairs:
            schedule.partition(crash_at, a, b, duration=crash_duration)
        return schedule.start()

    return Scenario(
        name="failover_storm", specs=specs, faults=faults,
        notes=f"{victim} crashes at t={crash_at}s for {crash_duration}s")


#: name -> builder, for CLIs and examples (``--scenario flash_crowd``)
SCENARIOS: dict[str, Callable[..., Scenario]] = {
    "flash_crowd": flash_crowd,
    "diurnal": diurnal,
    "hotspot_shift": hotspot_shift,
    "failover_storm": failover_storm,
}
