"""The FUSE-substitute POSIX file API over Wiera objects.

Files are chunked into fixed-size blocks; block ``i`` of ``/a/b`` lives in
the Wiera object ``/a/b\\x00blk\\x00i``.  Partial-block writes do
read-modify-write; reads of unwritten holes return zeros; file sizes are
kept in the FS table and persisted in a per-file metadata object on
fsync/close (one writer per file, as with the paper's single-VM MySQL).
"""

from __future__ import annotations

import json
from typing import Generator

from repro.core.client import WieraClient
from repro.util.units import KB


class FsError(RuntimeError):
    pass


def block_object_key(path: str, index: int) -> str:
    return f"{path}\x00blk\x00{index}"


def meta_object_key(path: str) -> str:
    return f"{path}\x00meta"


class WieraFS:
    """Filesystem facade; one per mounting application."""

    def __init__(self, client: WieraClient, block_size: int = 16 * KB):
        if block_size <= 0:
            raise FsError("block size must be positive")
        self.client = client
        self.block_size = block_size
        self._sizes: dict[str, int] = {}
        self._open: dict[str, "FileHandle"] = {}

    def open(self, path: str, create: bool = True) -> "FileHandle":
        if not path:
            raise FsError("empty path")
        if path not in self._sizes:
            if not create:
                raise FileNotFoundError(path)
            self._sizes[path] = self._sizes.get(path, 0)
        handle = FileHandle(self, path)
        self._open[path] = handle
        return handle

    def exists(self, path: str) -> bool:
        return path in self._sizes

    def stat(self, path: str) -> dict:
        if path not in self._sizes:
            raise FileNotFoundError(path)
        return {"path": path, "size": self._sizes[path],
                "block_size": self.block_size}

    def listdir(self, prefix: str = "") -> list[str]:
        return sorted(p for p in self._sizes if p.startswith(prefix))

    def unlink(self, path: str) -> Generator:
        if path not in self._sizes:
            raise FileNotFoundError(path)
        size = self._sizes.pop(path)
        self._open.pop(path, None)
        nblocks = (size + self.block_size - 1) // self.block_size
        for i in range(nblocks):
            try:
                yield from self.client.remove(block_object_key(path, i))
            except Exception:
                continue  # hole
        try:
            yield from self.client.remove(meta_object_key(path))
        except Exception:
            pass

    # -- restore file table from persisted metadata ------------------------
    def mount_existing(self, path: str) -> Generator:
        """Load a file's size from its metadata object (remount case)."""
        result = yield from self.client.get(meta_object_key(path))
        meta = json.loads(result["data"].decode())
        self._sizes[path] = meta["size"]
        return meta


class FileHandle:
    """An open file: positioned and positional IO, fsync, truncate."""

    def __init__(self, fs: WieraFS, path: str):
        self.fs = fs
        self.path = path
        self.offset = 0
        self.closed = False
        self.reads = 0
        self.writes = 0

    # -- size ---------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.fs._sizes[self.path]

    def _set_size(self, size: int) -> None:
        self.fs._sizes[self.path] = size

    def seek(self, offset: int) -> None:
        if offset < 0:
            raise FsError("negative seek")
        self.offset = offset

    # -- positional IO ------------------------------------------------------
    def pread(self, offset: int, length: int) -> Generator:
        """Read up to ``length`` bytes at ``offset`` (short at EOF)."""
        self._check_open()
        if offset < 0 or length < 0:
            raise FsError("negative offset/length")
        end = min(offset + length, self.size)
        if offset >= end:
            return b""
        bs = self.fs.block_size
        chunks = []
        block = offset // bs
        pos = offset
        while pos < end:
            block_start = block * bs
            lo = pos - block_start
            hi = min(end - block_start, bs)
            data = yield from self._read_block(block)
            chunks.append(data[lo:hi])
            self.reads += 1
            pos = block_start + hi
            block += 1
        return b"".join(chunks)

    def pwrite(self, offset: int, data: bytes) -> Generator:
        """Write ``data`` at ``offset``, extending the file as needed."""
        self._check_open()
        if offset < 0:
            raise FsError("negative offset")
        bs = self.fs.block_size
        end = offset + len(data)
        pos = offset
        written = 0
        while pos < end:
            block = pos // bs
            block_start = block * bs
            lo = pos - block_start
            hi = min(end - block_start, bs)
            piece = data[written:written + (hi - lo)]
            if lo == 0 and hi - lo == bs:
                payload = piece  # full-block write, no RMW
            else:
                existing = yield from self._read_block(block)
                existing = existing.ljust(bs, b"\0")
                payload = existing[:lo] + piece + existing[hi:]
            yield from self.fs.client.put(
                block_object_key(self.path, block), payload)
            self.writes += 1
            written += hi - lo
            pos = block_start + hi
        if end > self.size:
            self._set_size(end)
        return len(data)

    # -- positioned IO --------------------------------------------------------
    def read(self, length: int) -> Generator:
        data = yield from self.pread(self.offset, length)
        self.offset += len(data)
        return data

    def write(self, data: bytes) -> Generator:
        n = yield from self.pwrite(self.offset, data)
        self.offset += n
        return n

    # -- metadata ----------------------------------------------------------------
    def truncate(self, size: int) -> Generator:
        self._check_open()
        if size < 0:
            raise FsError("negative truncate")
        old = self.size
        self._set_size(size)
        bs = self.fs.block_size
        if size < old:
            first_dead = (size + bs - 1) // bs
            last = (old + bs - 1) // bs
            for i in range(first_dead, last):
                try:
                    yield from self.fs.client.remove(
                        block_object_key(self.path, i))
                except Exception:
                    continue

    def fsync(self) -> Generator:
        """Persist the file size record."""
        self._check_open()
        meta = json.dumps({"size": self.size,
                           "block_size": self.fs.block_size}).encode()
        yield from self.fs.client.put(meta_object_key(self.path), meta)

    def close(self) -> Generator:
        if self.closed:
            return
        yield from self.fsync()
        self.closed = True
        self.fs._open.pop(self.path, None)

    # -- internals -----------------------------------------------------------------
    def _read_block(self, index: int) -> Generator:
        try:
            result = yield from self.fs.client.get(
                block_object_key(self.path, index))
        except Exception:
            return b"\0" * self.fs.block_size  # unwritten hole
        return result["data"]

    def _check_open(self) -> None:
        if self.closed:
            raise FsError(f"file {self.path!r} is closed")
