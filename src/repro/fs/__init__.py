"""POSIX-style file layer over Wiera (the FUSE substitute, §5.4).

The paper builds a FUSE filesystem so unmodified POSIX applications
(SysBench, MySQL under RUBiS) can run on Wiera.  :class:`WieraFS` plays
that role here: file reads/writes are mapped onto block-aligned Wiera
objects and forwarded through a :class:`~repro.core.client.WieraClient`,
so an application's IO traverses the exact policy/consistency path a
hand-written Wiera application would.

:mod:`repro.fs.device` provides the uniform block-file interface the IO
workloads drive, with a direct-attached-disk implementation (the "without
Wiera" baseline) and a Wiera-backed implementation.
"""

from repro.fs.posixfs import FileHandle, WieraFS
from repro.fs.device import BlockFile, TierBlockFile, WieraBlockFile

__all__ = [
    "WieraFS",
    "FileHandle",
    "BlockFile",
    "TierBlockFile",
    "WieraBlockFile",
]
