"""Uniform block-file interface for the IO benchmarks.

SysBench and the mini-DB drive a :class:`BlockFile`: fixed-size blocks,
``read_block``/``write_block`` generators.  Two implementations mirror the
two storage settings of §5.4:

* :class:`TierBlockFile` — direct IO against a locally attached disk tier
  (the "Azure local disk without Wiera" baseline), and
* :class:`WieraBlockFile` — block IO through the POSIX layer over Wiera
  (the "remote memory through Wiera" configuration).
"""

from __future__ import annotations

from typing import Generator

from repro.fs.posixfs import FileHandle
from repro.storage.backend import StorageBackend
from repro.util.units import KB


class BlockFile:
    """Abstract fixed-block random-access file."""

    block_size: int
    nblocks: int

    def read_block(self, index: int) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    def write_block(self, index: int, data: bytes) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    def _check(self, index: int) -> None:
        if not 0 <= index < self.nblocks:
            raise IndexError(f"block {index} out of range 0..{self.nblocks - 1}")


class TierBlockFile(BlockFile):
    """Blocks stored directly on a storage tier (attached disk)."""

    def __init__(self, backend: StorageBackend, name: str,
                 nblocks: int, block_size: int = 16 * KB):
        self.backend = backend
        self.name = name
        self.nblocks = nblocks
        self.block_size = block_size

    def _key(self, index: int) -> str:
        return f"{self.name}:blk:{index}"

    def prepare(self, fill: bytes = b"\0") -> None:
        """Zero-time setup: materialize every block (the sysbench prepare
        phase / mkfs)."""
        pattern = (fill * self.block_size)[:self.block_size]
        for i in range(self.nblocks):
            self.backend.preload(self._key(i), pattern)

    def read_block(self, index: int) -> Generator:
        self._check(index)
        data = yield from self.backend.read(self._key(index))
        return data

    def write_block(self, index: int, data: bytes) -> Generator:
        self._check(index)
        yield from self.backend.write(self._key(index), data)


class WieraBlockFile(BlockFile):
    """Blocks accessed through the POSIX layer over Wiera."""

    def __init__(self, handle: FileHandle, nblocks: int):
        self.handle = handle
        self.nblocks = nblocks
        self.block_size = handle.fs.block_size

    def read_block(self, index: int) -> Generator:
        self._check(index)
        data = yield from self.handle.pread(index * self.block_size,
                                            self.block_size)
        if len(data) < self.block_size:
            data = data.ljust(self.block_size, b"\0")
        return data

    def write_block(self, index: int, data: bytes) -> Generator:
        self._check(index)
        yield from self.handle.pwrite(index * self.block_size, data)
