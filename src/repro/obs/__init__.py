"""Observability for the Wiera runtime: tracing, metrics, exporters.

Usage::

    from repro.obs import get_obs

    obs = get_obs(dep.sim)          # always available: shared metrics
    tracer = obs.enable_tracing()   # opt-in: record sim-time spans
    ... run workload ...
    from repro.obs import write_chrome_trace, write_metrics
    write_chrome_trace(tracer, "results/run_trace.json")
    write_metrics(obs.metrics, "results/run_metrics.json")

See DESIGN.md ("Observability") for the trace model and exporter formats.
"""

from repro.obs.api import Observability, get_obs
from repro.obs.export import chrome_trace_events, write_chrome_trace, write_metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NullTracer, Span, TraceContext, Tracer

__all__ = [
    "Observability",
    "get_obs",
    "TraceContext",
    "Span",
    "Tracer",
    "NullTracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_metrics",
]
