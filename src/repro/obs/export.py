"""Exporters: Chrome ``trace_event`` JSON and flat metrics dumps.

The Chrome format (load via ``chrome://tracing`` or https://ui.perfetto.dev)
maps one *component* (RPC node, host, storage tier...) to a trace "process"
row and one *trace* (request tree) to a "thread" within it, so concurrent
requests through the same component land on separate tracks and nest purely
by time containment.  Timestamps are simulated seconds scaled to the
format's microseconds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

_US = 1e6  # sim seconds -> trace_event microseconds


def chrome_trace_events(spans: Iterable) -> list[dict[str, Any]]:
    """Convert finished spans to a ``traceEvents`` list."""
    pids: dict[str, int] = {}
    threads: set[tuple[int, int]] = set()
    events: list[dict[str, Any]] = []
    for span in sorted((s for s in spans if s.end is not None),
                       key=lambda s: (s.start, s.span_id)):
        component = span.component or "sim"
        pid = pids.setdefault(component, len(pids) + 1)
        threads.add((pid, span.trace_id))
        args = {k: _jsonable(v) for k, v in span.args.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_span_id"] = span.parent_id
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.cat or "span",
            "ts": span.start * _US,
            "dur": (span.end - span.start) * _US,
            "pid": pid,
            "tid": span.trace_id,
            "args": args,
        })
    meta: list[dict[str, Any]] = []
    for component, pid in pids.items():
        meta.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                     "args": {"name": component}})
    for pid, tid in sorted(threads):
        meta.append({"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                     "args": {"name": f"trace {tid}"}})
    return meta + events


def write_chrome_trace(tracer_or_spans, path: str | Path) -> Path:
    """Write a Chrome ``trace_event`` JSON file; returns its path."""
    spans = getattr(tracer_or_spans, "spans", tracer_or_spans)
    payload = {"traceEvents": chrome_trace_events(spans),
               "displayTimeUnit": "ms"}
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=1))
    return out


def write_metrics(registry, path: str | Path) -> Path:
    """Write the registry's flat snapshot as JSON; returns the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(registry.snapshot(), indent=1, default=str))
    return out


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
