"""Sim-time distributed tracing.

A :class:`Tracer` records :class:`Span` trees over *simulated* time.  Spans
follow the causality of generator processes rather than threads: the current
trace context is bound to the kernel's active :class:`~repro.sim.kernel.Process`
(its ``obs_ctx`` slot), so a span opened inside a process parents every span
opened deeper in the same process, and :class:`~repro.sim.rpc.RpcNode` carries
the context across process boundaries on the :class:`~repro.sim.rpc.Message`
envelope — the sim equivalent of W3C trace-context propagation.

Tracing is disabled by default: components talk to a :class:`NullTracer`
whose ``span()`` returns one shared no-op span, so the instrumented hot
paths (RPC dispatch, network transmits, storage accesses) allocate nothing
and consume no simulated time either way.
"""

from __future__ import annotations

import itertools
from typing import Any, NamedTuple, Optional


class TraceContext(NamedTuple):
    """The (trace, span) identity propagated between components."""

    trace_id: int
    span_id: int


class Span:
    """One timed operation; usable as a context manager around ``yield from``."""

    __slots__ = ("tracer", "name", "cat", "component", "trace_id", "span_id",
                 "parent_id", "start", "end", "args", "_proc", "_saved")

    def __init__(self, tracer: "Tracer", name: str, cat: str, component: str,
                 trace_id: int, span_id: int, parent_id: Optional[int],
                 start: float, args: dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.component = component
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.args = args
        self._proc = None
        self._saved: Optional[TraceContext] = None

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def set(self, **kv: Any) -> "Span":
        """Attach extra key/value annotations to the span."""
        self.args.update(kv)
        return self

    def finish(self) -> None:
        self.tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.args["error"] = repr(exc)
        self.finish()
        return False

    def __repr__(self) -> str:
        state = "open" if self.end is None else f"{self.duration:.6f}s"
        return (f"<Span {self.name!r} cat={self.cat} trace={self.trace_id} "
                f"id={self.span_id} parent={self.parent_id} {state}>")


class _NullSpan:
    """Shared no-op span returned by :class:`NullTracer`."""

    __slots__ = ()
    context = None
    args: dict[str, Any] = {}

    def set(self, **kv: Any) -> "_NullSpan":
        return self

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost recorder installed while tracing is disabled."""

    enabled = False
    spans: list = []

    def span(self, name: str, cat: str = "", component: str = "",
             parent: Optional[TraceContext] = None, **args: Any) -> _NullSpan:
        return NULL_SPAN

    def current(self) -> None:
        return None

    def clear(self) -> None:
        pass


class Tracer:
    """Records finished spans in sim-time; one instance per Simulator."""

    enabled = True

    def __init__(self, sim):
        self.sim = sim
        self.spans: list[Span] = []
        self._next_trace = itertools.count(1).__next__
        self._next_span = itertools.count(1).__next__

    def current(self) -> Optional[TraceContext]:
        """Trace context of the currently executing process, if any."""
        proc = self.sim.active_process
        return proc.obs_ctx if proc is not None else None

    def span(self, name: str, cat: str = "", component: str = "",
             parent: Optional[TraceContext] = None, **args: Any) -> Span:
        """Open a span; the caller must close it (``with`` or ``finish()``).

        Without an explicit ``parent``, the span nests under the active
        process's current span; a span with no parent starts a new trace.
        While open, the span becomes the active process's current context,
        so nested instrumentation parents correctly.
        """
        proc = self.sim.active_process
        if parent is None and proc is not None:
            parent = proc.obs_ctx
        if parent is None:
            trace_id, parent_id = self._next_trace(), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        span = Span(self, name, cat, component, trace_id, self._next_span(),
                    parent_id, self.sim.now, args)
        if proc is not None:
            span._proc = proc
            span._saved = proc.obs_ctx
            proc.obs_ctx = span.context
        return span

    def _finish(self, span: Span) -> None:
        if span.end is not None:
            return  # already closed
        span.end = self.sim.now
        proc = span._proc
        if proc is not None and proc.obs_ctx == span.context:
            proc.obs_ctx = span._saved
        span._proc = None
        self.spans.append(span)

    def clear(self) -> None:
        self.spans.clear()

    # -- queries (test/debug helpers) ------------------------------------
    def by_category(self, cat: str) -> list[Span]:
        return [s for s in self.spans if s.cat == cat]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans
                if s.trace_id == span.trace_id and s.parent_id == span.span_id]
