"""The per-Simulator observability bundle and its access point.

Every simulator owns at most one :class:`Observability`, created lazily by
:func:`get_obs` the first time an instrumented component asks for it.  The
metrics registry is always live (recording a sample is a bounded-ring append
and costs no simulated time); the tracer defaults to the no-op
:class:`~repro.obs.trace.NullTracer` and is swapped for a real recorder by
:meth:`Observability.enable_tracing` — so by default instrumentation leaves
experiment timings bit-identical while still feeding the monitors' shared
metrics.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullTracer, Tracer


class Observability:
    """Tracer + metrics registry for one simulation."""

    def __init__(self, sim, tracing: bool = False):
        if getattr(sim, "_obs", None) is not None:
            raise RuntimeError(
                "simulator already has an Observability; use get_obs(sim)")
        self.sim = sim
        self.metrics = MetricsRegistry(sim)
        self.tracer = Tracer(sim) if tracing else NullTracer()
        sim._obs = self

    @property
    def tracing_enabled(self) -> bool:
        return self.tracer.enabled

    def enable_tracing(self) -> Tracer:
        """Swap in a recording tracer (idempotent); returns it."""
        if not self.tracer.enabled:
            self.tracer = Tracer(self.sim)
        return self.tracer

    def disable_tracing(self) -> None:
        """Return to the no-op recorder, discarding nothing already recorded."""
        if self.tracer.enabled:
            self.tracer = NullTracer()


def get_obs(sim) -> Observability:
    """The simulator's Observability, created (tracing off) on first use."""
    obs = getattr(sim, "_obs", None)
    if obs is None:
        obs = Observability(sim)
    return obs
