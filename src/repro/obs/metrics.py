"""Metrics registry: counters, gauges, and sim-time histograms.

One :class:`MetricsRegistry` per Simulator (see :mod:`repro.obs.api`) holds
every metric under a ``(kind, name, labels)`` identity, so independent
components — RPC nodes, storage tiers, the lock service, Wiera's monitors —
share a single flat namespace that exporters can dump wholesale.  Histograms
keep a bounded ring of ``(sim_time, value)`` samples, giving both aggregate
percentiles (p50/p95/p99) and the windowed queries the dynamism monitors
need ("worst put latency over the last N seconds").
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator, Optional

from repro.util.stats import OnlineStats, percentile, percentile_sorted

LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


def flat_name(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> Any:
        return self.value


class Gauge:
    """Last-set value (e.g. the monitor's current latency signal)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> Any:
        return self.value


class Histogram:
    """Sim-timestamped sample distribution with windowed views.

    Aggregate statistics (count/mean/min/max) cover every observation ever
    made; the percentile and window queries see the bounded sample ring
    (``maxlen`` most recent observations).
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "sim", "_ring", "stats")

    def __init__(self, sim, name: str, labels: LabelKey, maxlen: int = 2048):
        self.sim = sim
        self.name = name
        self.labels = labels
        self._ring: deque[tuple[float, float]] = deque(maxlen=maxlen)
        self.stats = OnlineStats()

    def observe(self, value: float) -> None:
        self._ring.append((self.sim.now, value))
        self.stats.add(value)

    @property
    def count(self) -> int:
        return self.stats.count

    def __len__(self) -> int:
        return len(self._ring)

    def values(self) -> list[float]:
        return [v for _, v in self._ring]

    def values_since(self, t: float) -> list[float]:
        """Samples observed at sim-time >= ``t`` (within the ring)."""
        return [v for ts, v in self._ring if ts >= t]

    def max_since(self, t: float) -> Optional[float]:
        recent = self.values_since(t)
        return max(recent) if recent else None

    def percentile(self, q: float) -> float:
        vals = self.values()
        return percentile(vals, q) if vals else 0.0

    def snapshot(self) -> dict[str, float]:
        # One sort shared by all three quantiles (the ring holds up to
        # 2048 samples and exporters snapshot every histogram).
        ordered = sorted(v for _, v in self._ring)
        return {
            "count": self.stats.count,
            "mean": self.stats.mean,
            "min": self.stats.min if self.stats.count else 0.0,
            "max": self.stats.max if self.stats.count else 0.0,
            "p50": percentile_sorted(ordered, 50) if ordered else 0.0,
            "p95": percentile_sorted(ordered, 95) if ordered else 0.0,
            "p99": percentile_sorted(ordered, 99) if ordered else 0.0,
        }


class MetricsRegistry:
    """All metrics of one simulation, keyed by (kind, name, labels)."""

    def __init__(self, sim):
        self.sim = sim
        self._metrics: dict[tuple, Any] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, maxlen: int = 2048,
                  **labels: Any) -> Histogram:
        key = ("histogram", name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(self.sim, name, key[2], maxlen=maxlen)
            self._metrics[key] = metric
        return metric

    def _get(self, cls, name: str, labels: dict[str, Any]):
        key = (cls.kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[2])
            self._metrics[key] = metric
        return metric

    def __iter__(self) -> Iterator:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """Flat ``name{labels} -> value`` dump of every metric."""
        out: dict[str, Any] = {}
        for metric in self._metrics.values():
            out[flat_name(metric.name, metric.labels)] = metric.snapshot()
        return dict(sorted(out.items()))

    def render(self) -> str:
        lines = []
        for fname, value in self.snapshot().items():
            if isinstance(value, dict):
                inner = " ".join(f"{k}={_fmt(v)}" for k, v in value.items())
                lines.append(f"{fname}: {inner}")
            else:
                lines.append(f"{fname}: {_fmt(value)}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
