"""Metrics registry: counters, gauges, and sim-time histograms.

One :class:`MetricsRegistry` per Simulator (see :mod:`repro.obs.api`) holds
every metric under a ``(kind, name, labels)`` identity, so independent
components — RPC nodes, storage tiers, the lock service, Wiera's monitors —
share a single flat namespace that exporters can dump wholesale.  Histograms
keep a bounded ring of ``(sim_time, value)`` samples, giving both aggregate
percentiles (p50/p95/p99) and the windowed queries the dynamism monitors
need ("worst put latency over the last N seconds").
"""

from __future__ import annotations

import copy
from collections import deque
from typing import Any, Iterator, Optional

from repro.util.stats import OnlineStats, percentile, percentile_sorted

LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


def flat_name(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def merge_from(self, other: "Counter") -> None:
        """Counts from disjoint runs/workers add."""
        self.value += other.value

    def snapshot(self) -> Any:
        return self.value


class Gauge:
    """Last-set value (e.g. the monitor's current latency signal)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def merge_from(self, other: "Gauge", mode: str = "add") -> None:
        """Collision rule for gauges is caller-chosen: ``add`` (default)
        sums — right for level gauges used additively (queue depths,
        pending counts) and for the delta-merge the parallel runner does;
        ``last`` takes the other side's value — right for set-style
        gauges (epochs, signals) when the other run is "newer"."""
        if mode == "add":
            self.value += other.value
        elif mode == "last":
            self.value = other.value
        else:
            raise ValueError(f"unknown gauge merge mode {mode!r}")

    def snapshot(self) -> Any:
        return self.value


class Histogram:
    """Sim-timestamped sample distribution with windowed views.

    Aggregate statistics (count/mean/min/max) cover every observation ever
    made; the percentile and window queries see the bounded sample ring
    (``maxlen`` most recent observations).
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "sim", "_ring", "stats")

    def __init__(self, sim, name: str, labels: LabelKey, maxlen: int = 2048):
        self.sim = sim
        self.name = name
        self.labels = labels
        self._ring: deque[tuple[float, float]] = deque(maxlen=maxlen)
        self.stats = OnlineStats()

    def observe(self, value: float) -> None:
        self._ring.append((self.sim.now, value))
        self.stats.add(value)

    @property
    def count(self) -> int:
        return self.stats.count

    def __len__(self) -> int:
        return len(self._ring)

    def values(self) -> list[float]:
        return [v for _, v in self._ring]

    def values_since(self, t: float) -> list[float]:
        """Samples observed at sim-time >= ``t`` (within the ring)."""
        return [v for ts, v in self._ring if ts >= t]

    def max_since(self, t: float) -> Optional[float]:
        recent = self.values_since(t)
        return max(recent) if recent else None

    def percentile(self, q: float) -> float:
        vals = self.values()
        return percentile(vals, q) if vals else 0.0

    def merge_from(self, other: "Histogram") -> None:
        """Union of observations: aggregate stats combine exactly
        (:meth:`OnlineStats.merge`); the sample rings interleave by
        sim-timestamp (ties keep this histogram's samples first) and the
        ring bound keeps the most recent ``maxlen`` as usual."""
        self.stats.merge(other.stats)
        if not other._ring:
            return
        merged = sorted(list(self._ring) + list(other._ring),
                        key=lambda tv: tv[0])
        maxlen = self._ring.maxlen
        self._ring.clear()
        self._ring.extend(merged[-maxlen:] if maxlen else merged)

    def snapshot(self) -> dict[str, float]:
        # One sort shared by all three quantiles (the ring holds up to
        # 2048 samples and exporters snapshot every histogram).
        ordered = sorted(v for _, v in self._ring)
        return {
            "count": self.stats.count,
            "mean": self.stats.mean,
            "min": self.stats.min if self.stats.count else 0.0,
            "max": self.stats.max if self.stats.count else 0.0,
            "p50": percentile_sorted(ordered, 50) if ordered else 0.0,
            "p95": percentile_sorted(ordered, 95) if ordered else 0.0,
            "p99": percentile_sorted(ordered, 99) if ordered else 0.0,
        }


class MetricsRegistry:
    """All metrics of one simulation, keyed by (kind, name, labels)."""

    def __init__(self, sim):
        self.sim = sim
        self._metrics: dict[tuple, Any] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, maxlen: int = 2048,
                  **labels: Any) -> Histogram:
        key = ("histogram", name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(self.sim, name, key[2], maxlen=maxlen)
            self._metrics[key] = metric
        return metric

    def _get(self, cls, name: str, labels: dict[str, Any]):
        key = (cls.kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[2])
            self._metrics[key] = metric
        return metric

    def __iter__(self) -> Iterator:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    # -- merging (multi-run / multi-worker reports) ---------------------------
    def merge_from(self, other: "MetricsRegistry",
                   gauges: str = "add") -> "MetricsRegistry":
        """Fold another registry in, metric by metric.

        Collision rules: counters add; gauges follow ``gauges`` ("add" or
        "last", see :meth:`Gauge.merge_from`); histograms union their
        observations.  Metrics present only in ``other`` are created here.
        Used to combine independent runs into one report and by the
        parallel runner (:mod:`repro.par`) to merge per-worker deltas.
        """
        for key, metric in other._metrics.items():
            kind, name, labels = key
            mine = self._metrics.get(key)
            if mine is None:
                label_kw = dict(labels)
                if kind == "histogram":
                    mine = self.histogram(name, maxlen=metric._ring.maxlen,
                                          **label_kw)
                elif kind == "gauge":
                    mine = self.gauge(name, **label_kw)
                else:
                    mine = self.counter(name, **label_kw)
            if kind == "gauge":
                mine.merge_from(metric, mode=gauges)
            else:
                mine.merge_from(metric)
        return self

    def dump_state(self) -> list[tuple]:
        """Full picklable state: ``(kind, name, labels, state)`` rows.

        Counters/gauges dump their value; histograms dump the sample ring
        plus the aggregate :class:`OnlineStats`.  Round-trips through
        :meth:`load_state` — the wire format workers ship to the parallel
        runner's merge step (a Simulator reference never crosses the
        process boundary).
        """
        rows = []
        for (kind, name, labels), metric in self._metrics.items():
            if kind == "histogram":
                state = {"ring": list(metric._ring),
                         "maxlen": metric._ring.maxlen,
                         "stats": copy.copy(metric.stats)}
            else:
                state = metric.value
            rows.append((kind, name, labels, state))
        return rows

    def load_state(self, rows: list[tuple]) -> "MetricsRegistry":
        """Recreate metrics from a :meth:`dump_state` dump (additive onto
        an empty registry; collides like :meth:`merge_from` otherwise)."""
        for kind, name, labels, state in rows:
            label_kw = dict(labels)
            if kind == "histogram":
                hist = self.histogram(name, maxlen=state["maxlen"] or 2048,
                                      **label_kw)
                other = Histogram(self.sim, name, hist.labels,
                                  maxlen=state["maxlen"] or 2048)
                other._ring.extend(state["ring"])
                other.stats = state["stats"]
                hist.merge_from(other)
            elif kind == "gauge":
                self.gauge(name, **label_kw).add(state)
            else:
                self.counter(name, **label_kw).inc(state)
        return self

    def snapshot(self) -> dict[str, Any]:
        """Flat ``name{labels} -> value`` dump of every metric."""
        out: dict[str, Any] = {}
        for metric in self._metrics.values():
            out[flat_name(metric.name, metric.labels)] = metric.snapshot()
        return dict(sorted(out.items()))

    def render(self) -> str:
        lines = []
        for fname, value in self.snapshot().items():
            if isinstance(value, dict):
                inner = " ".join(f"{k}={_fmt(v)}" for k, v in value.items())
                lines.append(f"{fname}: {inner}")
            else:
                lines.append(f"{fname}: {_fmt(value)}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
