"""Shard map, ownership guard, and the per-namespace shard manager.

A sharded namespace is N ordinary Wiera instances (``{base}-s0`` ..
``{base}-sN``), each running its own consistency protocol over its own
replica group, with the keyspace split between them by a
:class:`~repro.shard.ring.HashRing`.  The :class:`ShardManager` on the
WieraService owns the authoritative, epoch-numbered :class:`ShardMap`;
clients cache a snapshot and instances enforce it with a
:class:`ShardGuard`.

The epoch/redirect protocol: every map publication bumps ``epoch``.  An
instance whose guard says a key belongs elsewhere raises
:class:`WrongShardError` (carrying its epoch) instead of serving the
request; the client catches it, refreshes its cached map from the
service (``get_shard_map``), and retries against the new owner.  A stale
client therefore never silently reads or writes the wrong shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.obs.api import get_obs
from repro.shard.ring import DEFAULT_VNODES, HashRing


class ShardError(RuntimeError):
    pass


class WrongShardError(RuntimeError):
    """The contacted shard does not own the key under its current map.

    Deliberately *not* a NetworkError/RpcError subclass: the client must
    treat it as a redirect (refresh the map, re-route), not as an
    instance failure to sweep past.
    """

    def __init__(self, message: str, key: str, owner: str, epoch: int):
        super().__init__(message)
        self.key = key
        self.owner = owner     # shard id that owns the key now
        self.epoch = epoch     # epoch of the rejecting guard

    def __reduce__(self):
        # BaseException pickles via .args (just the message), which would
        # drop key/owner/epoch on unpickle; redirects crossing the
        # parallel bridge need all four to re-route correctly.
        return (WrongShardError,
                (str(self), self.key, self.owner, self.epoch))


@dataclass(frozen=True)
class ShardMap:
    """One immutable published partition of the namespace."""

    epoch: int
    ring: HashRing
    #: shard id -> instance-info dicts (the ``instance_list()`` shape)
    shards: dict[str, tuple[dict, ...]] = field(default_factory=dict)

    def owner(self, key: str) -> str:
        return self.ring.owner(key)

    def instances_for(self, key: str) -> tuple[dict, ...]:
        return self.shards[self.ring.owner(key)]

    def all_instances(self) -> list[dict]:
        return [info for shard_id in sorted(self.shards)
                for info in self.shards[shard_id]]


class ShardGuard:
    """Server-side ownership check installed on every Tiera instance.

    The guard is shipped to instances over ``ctl_set_shard`` so the tiera
    layer never imports shard code; it only calls ``check(key)`` on the
    app-facing RPC paths.
    """

    def __init__(self, shard_id: str, ring: HashRing, epoch: int):
        self.shard_id = shard_id
        self.ring = ring
        self.epoch = epoch

    def owns(self, key: str) -> bool:
        return self.ring.owner(key) == self.shard_id

    def check(self, key: str) -> None:
        owner = self.ring.owner(key)
        if owner != self.shard_id:
            raise WrongShardError(
                f"{key!r} belongs to {owner} (epoch {self.epoch}), "
                f"not {self.shard_id}", key=key, owner=owner,
                epoch=self.epoch)

    def __repr__(self) -> str:
        return f"<ShardGuard {self.shard_id} epoch={self.epoch}>"


class HandoffSpec:
    """Dual-write window descriptor installed on a migration *source*.

    While a rebalance is in flight, every acknowledged write on the
    source shard whose key moves under ``ring_new`` is also forwarded
    (fire-and-forget ``replica_update``/``replica_remove``) to all
    instances of the key's new owner, so the destination converges live
    and the final cutover sweep only has to cover forwards lost to
    faults.
    """

    def __init__(self, shard_id: str, ring_new: HashRing,
                 dest_nodes: dict[str, tuple]):
        self.shard_id = shard_id
        self.ring_new = ring_new
        self._dest_nodes = dest_nodes   # shard id -> tuple[RpcNode]

    def moves(self, key: str) -> Optional[str]:
        """The new owning shard id if ``key`` leaves this shard, else None."""
        owner = self.ring_new.owner(key)
        return owner if owner != self.shard_id else None

    def dest_nodes(self, shard_id: str) -> tuple:
        return self._dest_nodes.get(shard_id, ())


@dataclass
class ShardHandle:
    """What the harness hands back for one (possibly sharded) namespace."""

    base_id: str
    instances: list[dict]
    map: Optional[ShardMap] = None   # None when shards=1 (plain instance)

    @property
    def sharded(self) -> bool:
        return self.map is not None


class ShardManager:
    """Authoritative shard state for one sharded namespace.

    Lives on the WieraService; launches the per-shard Wiera instances,
    publishes :class:`ShardMap` epochs, and installs/updates the guards.
    Add/remove of shards delegates the data motion to
    :class:`~repro.shard.rebalance.Rebalancer`.
    """

    def __init__(self, sim, wiera, base_id: str, spec,
                 shards: int, vnodes: int = DEFAULT_VNODES):
        if shards < 1:
            raise ShardError("a sharded namespace needs at least one shard")
        self.sim = sim
        self.wiera = wiera
        self.base_id = base_id
        self.spec = spec
        self.vnodes = vnodes
        self.initial_shards = shards
        self._seq = 0              # next shard ordinal
        self.epoch = 0
        self.map: Optional[ShardMap] = None
        self._obs = get_obs(sim)
        self._g_epoch = self._obs.metrics.gauge("shard.epoch",
                                                namespace=base_id)
        self._g_shards = self._obs.metrics.gauge("shard.count",
                                                 namespace=base_id)

    # -- bootstrap -----------------------------------------------------------
    def launch(self) -> Generator:
        """Start the initial shard set and publish epoch 1."""
        ring = HashRing(vnodes=self.vnodes)
        shards: dict[str, tuple[dict, ...]] = {}
        for _ in range(self.initial_shards):
            shard_id = self._next_shard_id()
            instances = yield from self.wiera.start_instances(
                shard_id, self.spec)
            ring.add(shard_id)
            shards[shard_id] = tuple(instances)
        self.publish(ring, shards)
        yield from self.install_guards(self.map)
        return self.map

    def _next_shard_id(self) -> str:
        shard_id = f"{self.base_id}-s{self._seq}"
        self._seq += 1
        return shard_id

    # -- map publication -----------------------------------------------------
    def publish(self, ring: HashRing,
                shards: dict[str, tuple[dict, ...]]) -> ShardMap:
        return self.commit(ShardMap(epoch=self.epoch + 1, ring=ring,
                                    shards=dict(shards)))

    def commit(self, shard_map: ShardMap) -> ShardMap:
        """Make ``shard_map`` the authoritative published map."""
        if shard_map.epoch != self.epoch + 1:
            raise ShardError(
                f"epoch must advance by one: {self.epoch} -> "
                f"{shard_map.epoch}")
        self.epoch = shard_map.epoch
        self.map = shard_map
        self._g_epoch.set(self.epoch)
        self._g_shards.set(len(shard_map.shards))
        return self.map

    def install_guards(self, shard_map: ShardMap) -> Generator:
        """Push a guard for ``shard_map`` to every instance of every shard."""
        for shard_id in sorted(shard_map.shards):
            guard = ShardGuard(shard_id, shard_map.ring, shard_map.epoch)
            for info in shard_map.shards[shard_id]:
                yield self.wiera.node.call(info["node"], "ctl_set_shard",
                                           {"guard": guard})

    # -- elasticity ----------------------------------------------------------
    def add_shard(self, retry_policy=None) -> Generator:
        """Grow the namespace by one shard, migrating only remapped ranges."""
        from repro.shard.rebalance import Rebalancer
        rebalancer = Rebalancer(self, retry_policy=retry_policy)
        result = yield from rebalancer.add_shard()
        return result

    def remove_shard(self, shard_id: str, retry_policy=None) -> Generator:
        """Shrink the namespace, draining ``shard_id``'s keys to the rest."""
        from repro.shard.rebalance import Rebalancer
        rebalancer = Rebalancer(self, retry_policy=retry_policy)
        result = yield from rebalancer.remove_shard(shard_id)
        return result
