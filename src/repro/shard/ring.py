"""Consistent-hash ring with virtual nodes.

Anna/Dynamo-style keyspace partitioning: every shard contributes
``vnodes`` tokens on a 64-bit ring and a key belongs to the shard whose
token is the first at-or-clockwise-after the key's point.  Tokens and key
points are SHA-256 based, so placement is a pure function of the shard-id
set — independent of the deployment seed, of insertion order, and of the
process running it.  That determinism is load-bearing: the client-side
router and the server-side ownership guards each build their view of the
partition from a :class:`ShardMap` snapshot and must always agree.

Virtual nodes smooth the load spread (±20% across shards at the default
128 vnodes) and make the minimal-movement property hold: adding a shard
to an N-shard ring remaps ~K/(N+1) of K keys and nothing else.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

#: default virtual nodes per shard; enough for a ±20% load spread
DEFAULT_VNODES = 128


def hash_point(value: str) -> int:
    """Deterministic 64-bit ring position of an arbitrary string."""
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing over shard ids with virtual nodes."""

    def __init__(self, shard_ids: Iterable[str] = (),
                 vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("need at least one virtual node per shard")
        self.vnodes = vnodes
        self._shards: set[str] = set()
        self._tokens: list[int] = []
        self._owners: list[str] = []
        for shard_id in shard_ids:
            self._shards.add(shard_id)
        self._rebuild()

    # -- membership -----------------------------------------------------------
    @property
    def shard_ids(self) -> tuple[str, ...]:
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def add(self, shard_id: str) -> None:
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} already on the ring")
        self._shards.add(shard_id)
        self._rebuild()

    def remove(self, shard_id: str) -> None:
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id!r} not on the ring")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.discard(shard_id)
        self._rebuild()

    def copy(self) -> "HashRing":
        return HashRing(self._shards, vnodes=self.vnodes)

    def _rebuild(self) -> None:
        pairs = sorted(
            (hash_point(f"{shard_id}#vn{i}"), shard_id)
            for shard_id in self._shards
            for i in range(self.vnodes))
        self._tokens = [token for token, _ in pairs]
        self._owners = [owner for _, owner in pairs]

    # -- lookup -----------------------------------------------------------
    def owner(self, key: str) -> str:
        """The shard id owning ``key``."""
        if not self._tokens:
            raise ValueError("ring has no shards")
        idx = bisect.bisect_right(self._tokens, hash_point(key))
        return self._owners[idx % len(self._owners)]

    def __repr__(self) -> str:
        return (f"<HashRing shards={len(self._shards)} "
                f"vnodes={self.vnodes}>")
