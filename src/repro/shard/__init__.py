"""repro.shard: consistent-hash partitioned namespace with live rebalancing.

Layered over the existing core: the keyspace is split across N ordinary
Wiera instances by a deterministic :class:`HashRing`; the authoritative
epoch-numbered :class:`ShardMap` lives in a :class:`ShardManager` on the
WieraService; clients route per key through a
:class:`~repro.shard.router.ShardRouter`; and a
:class:`~repro.shard.rebalance.Rebalancer` grows/shrinks the shard set
live, moving only the remapped key ranges.  Sharding is opt-in
(``build_deployment(shards=1)`` is the default and leaves every existing
code path untouched).
"""

from repro.shard.map import (
    HandoffSpec,
    ShardError,
    ShardGuard,
    ShardHandle,
    ShardManager,
    ShardMap,
    WrongShardError,
)
from repro.shard.rebalance import Rebalancer
from repro.shard.ring import DEFAULT_VNODES, HashRing, hash_point
from repro.shard.router import ShardRouter

__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "hash_point",
    "HandoffSpec",
    "Rebalancer",
    "ShardError",
    "ShardGuard",
    "ShardHandle",
    "ShardManager",
    "ShardMap",
    "ShardRouter",
    "WrongShardError",
]
