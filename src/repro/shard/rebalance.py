"""Live rebalancing: grow or shrink a sharded namespace under traffic.

Adding (or removing) a shard changes the ring, which remaps ~K/N of K
keys — and nothing else.  The :class:`Rebalancer` moves exactly those
ranges without losing an acknowledged write:

1. **Dual-write window** — a :class:`~repro.shard.map.HandoffSpec` is
   installed on every source instance, so each acknowledged write whose
   key moves is also forwarded (fire-and-forget, through the existing
   ``replica_update``/``replica_remove`` machinery) to the new owner's
   instances while the old owner keeps serving.
2. **Bulk copy** — one live digest-driven pass per (source instance,
   destination instance) pair pushes the current contents of the moving
   ranges; deliveries are idempotent (LWW at the destination), so this
   can race freely with the dual writes.
3. **Cutover on drain** — source gates close (new requests queue, §3.3.2
   style), replication queues drain, and the digest sweep repeats until
   a full pass finds nothing left to move — so a partition mid-migration
   only *delays* the cutover until the network heals, it cannot make the
   cutover drop writes.  Then the new-epoch guards land on every
   instance, the map is published, moved keys are purged from the
   sources, and the gates reopen.  Clients still holding the old map get
   a ``WrongShardError`` redirect and refresh.

Every control call retries transient failures with capped backoff; the
whole migration is traced (``shard:migrate`` span) and metered
(``shard.keys_moved``, ``shard.migrations``, ``shard.migration_duration``).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.faults.retry import TRANSIENT_ERRORS, RetryPolicy
from repro.obs.api import get_obs
from repro.shard.map import HandoffSpec, ShardError, ShardMap
from repro.tiera.local_protocol import LocalOnlyProtocol

#: retry posture for migration control traffic: patient, capped backoff.
#: max_attempts is intentionally large — a migration must outwait a
#: partition, not abandon half-moved ranges.
MIGRATION_RETRIES = RetryPolicy(max_attempts=200, base_delay=0.1,
                                multiplier=2.0, max_delay=5.0, jitter=0.0)


class Rebalancer:
    """One add/remove-shard migration for one sharded namespace."""

    def __init__(self, manager, retry_policy: Optional[RetryPolicy] = None):
        self.manager = manager
        self.sim = manager.sim
        self.node = manager.wiera.node
        self.retry_policy = retry_policy or MIGRATION_RETRIES
        #: keys actually pushed to a new owner during this migration
        self.moved_keys: set[str] = set()
        self.sweep_rounds = 0
        self._obs = get_obs(self.sim)
        labels = {"namespace": manager.base_id}
        self._m_migrations = self._obs.metrics.counter("shard.migrations",
                                                       **labels)
        self._m_keys = self._obs.metrics.counter("shard.keys_moved", **labels)
        self._h_duration = self._obs.metrics.histogram(
            "shard.migration_duration", **labels)

    # -- public entry points -------------------------------------------------
    def add_shard(self) -> Generator:
        """Launch one more shard and migrate its ranges in."""
        mgr = self.manager
        old_map = self._current_map()
        shard_id = mgr._next_shard_id()
        with self._obs.tracer.span("shard:add", cat="shard",
                                   component=f"shardmgr:{mgr.base_id}",
                                   shard=shard_id) as span:
            instances = yield from mgr.wiera.start_instances(shard_id,
                                                             mgr.spec)
            ring_new = old_map.ring.copy()
            ring_new.add(shard_id)
            shards_new = dict(old_map.shards)
            shards_new[shard_id] = tuple(instances)
            # Every existing shard cedes a slice to the newcomer.
            yield from self._migrate(old_map, ring_new, shards_new,
                                     sources=sorted(old_map.shards))
            span.set(keys_moved=len(self.moved_keys),
                     epoch=mgr.map.epoch)
        return {"shard": shard_id, "epoch": mgr.map.epoch,
                "keys_moved": len(self.moved_keys)}

    def remove_shard(self, shard_id: str) -> Generator:
        """Drain ``shard_id``'s ranges to the survivors and retire it."""
        mgr = self.manager
        old_map = self._current_map()
        if shard_id not in old_map.shards:
            raise ShardError(f"{shard_id!r} is not a shard of "
                             f"{mgr.base_id!r}")
        if len(old_map.shards) == 1:
            raise ShardError("cannot remove the last shard")
        with self._obs.tracer.span("shard:remove", cat="shard",
                                   component=f"shardmgr:{mgr.base_id}",
                                   shard=shard_id) as span:
            ring_new = old_map.ring.copy()
            ring_new.remove(shard_id)
            shards_new = {sid: infos for sid, infos in old_map.shards.items()
                          if sid != shard_id}
            yield from self._migrate(old_map, ring_new, shards_new,
                                     sources=[shard_id], retiring=shard_id)
            # Detach the shard's protocol (stops its replication queues and
            # repairers) before the TIM tears the instances down.
            for rec in self._source_records(shard_id):
                yield from self._ctl(rec.node, "ctl_set_protocol",
                                     {"protocol": LocalOnlyProtocol()})
            yield from mgr.wiera.stop_instances(shard_id)
            span.set(keys_moved=len(self.moved_keys),
                     epoch=mgr.map.epoch)
        return {"removed": shard_id, "epoch": mgr.map.epoch,
                "keys_moved": len(self.moved_keys)}

    # -- the migration state machine ----------------------------------------
    def _migrate(self, old_map: ShardMap, ring_new, shards_new: dict,
                 sources: list[str],
                 retiring: Optional[str] = None) -> Generator:
        mgr = self.manager
        started = self.sim.now
        self._m_migrations.inc()
        # 1. Dual-write window: forwards cover writes racing the copy.
        handoffs = []
        for shard_id in sources:
            dest_nodes = {sid: tuple(info["node"] for info in infos)
                          for sid, infos in shards_new.items()
                          if sid != shard_id}
            handoff = HandoffSpec(shard_id, ring_new, dest_nodes)
            for rec in self._source_records(shard_id):
                yield from self._ctl(rec.node, "ctl_set_handoff",
                                     {"handoff": handoff})
                handoffs.append(rec)
        # 2. Bulk copy, live: one best-effort pass while traffic flows.
        yield from self._sweep_pass(old_map, ring_new, shards_new, sources,
                                    reconcile_removes=False)
        # 3. Cutover: gate, drain, sweep to convergence.
        gated = []
        for shard_id in sources:
            for rec in self._source_records(shard_id):
                yield from self._ctl(rec.node, "ctl_close_gate")
                gated.append(rec)
        for rec in gated:
            yield from self._ctl(rec.node, "ctl_drain")
        rounds = 0
        while True:
            pending = yield from self._sweep_pass(old_map, ring_new,
                                                  shards_new, sources,
                                                  reconcile_removes=True)
            if pending == 0:
                break
            rounds += 1
            yield self.sim.timeout(
                self.retry_policy.backoff(min(rounds - 1, 6)))
        # 4. New epoch: guards first (under closed gates), then the map.
        new_map = ShardMap(epoch=mgr.epoch + 1, ring=ring_new,
                           shards=dict(shards_new))
        for shard_id in sorted(new_map.shards):
            yield from self._install_guard(new_map, shard_id)
        if retiring is not None:
            # The retiring shard keeps a guard too, so any straggler
            # request is redirected rather than served from dying state.
            yield from self._install_guard(new_map, retiring,
                                           records=self._source_records(
                                               retiring))
        mgr.commit(new_map)
        # 5. Clear the dual-write window and drop ceded ranges.
        for rec in handoffs:
            yield from self._ctl(rec.node, "ctl_set_handoff",
                                 {"handoff": None})
        for shard_id in sources:
            if shard_id == retiring:
                continue   # about to be stopped wholesale
            for rec in self._source_records(shard_id):
                yield from self._ctl(rec.node, "ctl_purge_misowned")
        for rec in gated:
            yield from self._ctl(rec.node, "ctl_open_gate")
        self._h_duration.observe(self.sim.now - started)

    def _install_guard(self, shard_map: ShardMap, shard_id: str,
                       records=None) -> Generator:
        from repro.shard.map import ShardGuard
        guard = ShardGuard(shard_id, shard_map.ring, shard_map.epoch)
        if records is not None:
            nodes = [rec.node for rec in records]
        else:
            nodes = [info["node"] for info in shard_map.shards[shard_id]]
        for node in nodes:
            yield from self._ctl(node, "ctl_set_shard", {"guard": guard})

    def _sweep_pass(self, old_map: ShardMap, ring_new, shards_new: dict,
                    sources: list[str],
                    reconcile_removes: bool) -> Generator:
        """One digest-driven copy pass; returns how much remains unmoved.

        For each source instance, keys whose owner changes under
        ``ring_new`` are pushed (source → destination directly; Wiera
        stays off the data path) to every instance of the new owner that
        is missing them or holds an LWW-older copy.  With
        ``reconcile_removes`` (cutover only, when no new source writes
        can race), keys the source has removed are also removed from the
        destination.
        """
        self.sweep_rounds += 1
        pending = 0
        for shard_id in sources:
            for rec in self._source_records(shard_id):
                try:
                    src_digest = yield self.node.call(rec.node, "digest", {})
                except TRANSIENT_ERRORS:
                    pending += 1
                    continue
                src_keys = src_digest["keys"]
                moving: dict[str, dict] = {}
                for key, (version, modified) in src_keys.items():
                    dest = ring_new.owner(key)
                    if dest != shard_id:
                        moving.setdefault(dest, {})[key] = (version, modified)
                dest_ids = (sorted(set(shards_new) - {shard_id})
                            if reconcile_removes else sorted(moving))
                for dest_id in dest_ids:
                    to_dest = moving.get(dest_id, {})
                    for info in shards_new[dest_id]:
                        pending += yield from self._sync_pair(
                            rec, info["node"], dest_id, to_dest, src_keys,
                            old_map, ring_new, shard_id, reconcile_removes)
        return pending

    def _sync_pair(self, src_rec, dest_node, dest_id: str, to_dest: dict,
                   src_keys: dict, old_map: ShardMap, ring_new,
                   source_id: str, reconcile_removes: bool) -> Generator:
        """Bring one destination instance up to date from one source."""
        try:
            dest_digest = yield self.node.call(dest_node, "digest", {})
        except TRANSIENT_ERRORS:
            return len(to_dest) or 1
        theirs = dest_digest["keys"]
        stale = []
        for key, (version, modified) in to_dest.items():
            their_version, their_modified = theirs.get(key, (0, -1.0))
            if (their_modified, their_version) < (modified, version):
                stale.append(key)
        failed = 0
        if stale:
            try:
                result = yield self.node.call(
                    src_rec.node, "ctl_migrate_keys",
                    {"keys": sorted(stale), "dest": (dest_node,),
                     "batch_bytes": self.manager.spec.batch_bytes})
            except TRANSIENT_ERRORS:
                return len(stale)
            self.moved_keys.update(result["moved"])
            self._m_keys.inc(len(result["moved"]))
            failed += len(result["failed"])
        if reconcile_removes:
            # Keys the source removed after an earlier pass copied them.
            extra = [key for key in theirs
                     if key not in src_keys
                     and ring_new.owner(key) == dest_id
                     and old_map.ring.owner(key) == source_id]
            for key in sorted(extra):
                try:
                    yield self.node.call(dest_node, "replica_remove",
                                         {"key": key, "version": None})
                except TRANSIENT_ERRORS:
                    failed += 1
        return failed

    # -- plumbing -----------------------------------------------------------
    def _current_map(self) -> ShardMap:
        if self.manager.map is None:
            raise ShardError(f"{self.manager.base_id!r} not launched yet")
        return self.manager.map

    def _source_records(self, shard_id: str):
        return self.manager.wiera.tim(shard_id).alive_records()

    def _ctl(self, node, method: str, args: Optional[dict] = None) -> Generator:
        """A control RPC that outwaits transient faults with capped backoff."""
        policy = self.retry_policy
        for attempt in range(policy.max_attempts):
            if attempt:
                yield self.sim.timeout(policy.backoff(min(attempt - 1, 6)))
            try:
                result = yield self.node.call(node, method, args or {})
                return result
            except TRANSIENT_ERRORS as exc:
                last_error = exc
        raise last_error
