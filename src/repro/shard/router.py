"""Client-side shard routing.

The :class:`ShardRouter` sits inside a :class:`~repro.core.client.WieraClient`
and picks the candidate instance list per *key* instead of per client:
the key's owning shard under the cached :class:`~repro.shard.map.ShardMap`,
with that shard's instances ordered by network proximity, so the existing
failover sweep and retry policy apply unchanged *within* the owning
shard.

When an instance rejects a request with
:class:`~repro.shard.map.WrongShardError` (its guard is on a newer
epoch), the client calls :meth:`refresh` — an RPC to the WieraService's
``get_shard_map`` — and re-routes.  Refreshes are idempotent and cheap:
the map is a shared immutable snapshot.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.obs.api import get_obs
from repro.shard.map import ShardMap


class ShardRouter:
    """Key → candidate-instance routing against a cached shard map."""

    def __init__(self, client, service_node, base_id: str):
        self.client = client
        self.service_node = service_node   # the WieraService WUI node
        self.base_id = base_id
        self.map: Optional[ShardMap] = None
        self._by_shard: dict[str, list[dict]] = {}
        self.refreshes = 0
        metrics = get_obs(client.sim).metrics
        self._m_refreshes = metrics.counter("router.refreshes",
                                            client=client.node.name)
        self._m_redirects = metrics.counter("router.wrong_shard",
                                            client=client.node.name)

    def install(self, shard_map: ShardMap) -> None:
        """Cache ``shard_map``, pre-ordering each shard by proximity."""
        if self.map is not None and shard_map.epoch < self.map.epoch:
            return   # never go backwards in epochs
        client = self.client

        def distance(info) -> float:
            return client.network.oneway_latency(
                client.host, info["node"].host, include_dynamics=False)

        self.map = shard_map
        self._by_shard = {
            shard_id: sorted(infos, key=distance)
            for shard_id, infos in shard_map.shards.items()}

    def candidates(self, key: str) -> list[dict]:
        """Proximity-ordered instances of the shard owning ``key``."""
        return self._by_shard[self.map.owner(key)]

    def note_redirect(self) -> None:
        self._m_redirects.inc()

    def refresh(self) -> Generator:
        """Pull the current map from the service (epoch-mismatch recovery)."""
        result = yield self.client.node.call(
            self.service_node, "get_shard_map", {"base_id": self.base_id})
        self.install(result["map"])
        self.refreshes += 1
        self._m_refreshes.inc()
        return self.map
