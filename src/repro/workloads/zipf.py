"""Zipfian key choosers, after YCSB's generators.

Internet-service access patterns "typically conform to a Zipfian
distribution" (§3.3.3, citing Facebook); YCSB's workloads draw keys from a
Zipfian over the record space, *scrambled* by a hash so popular records are
spread across the keyspace rather than clustered at the low ids.
"""

from __future__ import annotations

import numpy as np

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a_64(value: int) -> int:
    """FNV-1a hash of an int's 8 little-endian bytes (YCSB's scrambler)."""
    h = _FNV_OFFSET
    for byte in value.to_bytes(8, "little"):
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


class Zipfian:
    """Zipf(theta) over [0, n).  Uses the Gray/YCSB rejection-free method."""

    def __init__(self, n: int, theta: float = 0.99,
                 rng: np.random.Generator | None = None):
        if n < 1:
            raise ValueError("Zipfian needs at least one item")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self.rng = rng or np.random.default_rng(0)
        self.zeta_n = self._zeta(n, theta)
        self.zeta_2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = ((1 - (2.0 / n) ** (1 - theta))
                    / (1 - self.zeta_2 / self.zeta_n))

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        return float(np.sum(1.0 / ranks ** theta))

    def next(self) -> int:
        u = self.rng.random()
        uz = u * self.zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self.eta * u - self.eta + 1) ** self.alpha)

    def sample(self, k: int) -> np.ndarray:
        return np.array([self.next() for _ in range(k)], dtype=np.int64)


class ZipfianCDF:
    """Exact Zipf(theta) over [0, n) by inverse-CDF lookup.

    The Gray/YCSB method above is an *approximation* (exact only for the
    two most popular ranks); this chooser precomputes the harmonic CDF
    once — O(n) setup, O(n) memory — and binary-searches it per draw, so
    every rank has exactly probability ``(1/(r+1)^theta) / H_{n,theta}``.
    Unlike :class:`Zipfian` it accepts any ``theta > 0`` (including
    ``theta >= 1``).
    """

    def __init__(self, n: int, theta: float = 0.99,
                 rng: np.random.Generator | None = None):
        if n < 1:
            raise ValueError("ZipfianCDF needs at least one item")
        if theta <= 0:
            raise ValueError("theta must be > 0")
        self.n = n
        self.theta = theta
        self.rng = rng or np.random.default_rng(0)
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = 1.0 / ranks ** theta
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf = cdf

    def next(self) -> int:
        return int(np.searchsorted(self._cdf, self.rng.random(),
                                   side="right"))

    def sample(self, k: int) -> np.ndarray:
        draws = self.rng.random(k)
        return np.searchsorted(self._cdf, draws,
                               side="right").astype(np.int64)


class ScrambledZipfian:
    """Zipfian ranks hashed across the item space (YCSB default).

    ``exact=True`` swaps the rank source for :class:`ZipfianCDF` (exact
    inverse-CDF sampling) instead of the Gray approximation.
    """

    def __init__(self, n: int, theta: float = 0.99,
                 rng: np.random.Generator | None = None,
                 exact: bool = False):
        self.n = n
        self._zipf = (ZipfianCDF(n, theta, rng) if exact
                      else Zipfian(n, theta, rng))

    def next(self) -> int:
        return fnv1a_64(self._zipf.next()) % self.n

    def sample(self, k: int) -> np.ndarray:
        return np.array([self.next() for _ in range(k)], dtype=np.int64)


class Uniform:
    """Uniform key chooser with the same interface."""

    def __init__(self, n: int, rng: np.random.Generator | None = None):
        if n < 1:
            raise ValueError("Uniform needs at least one item")
        self.n = n
        self.rng = rng or np.random.default_rng(0)

    def next(self) -> int:
        return int(self.rng.integers(0, self.n))

    def sample(self, k: int) -> np.ndarray:
        return self.rng.integers(0, self.n, size=k)
