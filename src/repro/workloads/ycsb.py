"""YCSB-like workload driver.

Implements the subset of the Yahoo Cloud Serving Benchmark the paper's
experiments use: a record space, an operation mix (read/update), a key
chooser (scrambled Zipfian or uniform), and closed-loop clients driving a
:class:`~repro.core.client.WieraClient`.  The paper runs "workload A: an
update heavy workload" for Fig. 7 and a "read mostly workload (5% put and
95% get)" for Fig. 8.

The :class:`StalenessOracle` provides the ground truth Fig. 8 needs: it
tracks the globally latest acknowledged version per key so each get can be
classified as *latest* (strong) or *outdated* (eventual).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.sim.kernel import Interrupt
from repro.workloads.zipf import ScrambledZipfian, Uniform


@dataclass(frozen=True)
class YcsbWorkload:
    """Operation mix + record space (one YCSB 'workload' file)."""

    name: str = "workload-a"
    record_count: int = 1000
    value_size: int = 1024        # 10 fields x ~100B, YCSB's default row
    read_prop: float = 0.5
    update_prop: float = 0.5
    distribution: str = "zipfian"
    zipf_theta: float = 0.99

    def __post_init__(self):
        total = self.read_prop + self.update_prop
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"operation mix must sum to 1, got {total}")
        if self.distribution not in ("zipfian", "zipfian_exact", "uniform"):
            raise ValueError(f"unknown distribution {self.distribution!r}")

    @classmethod
    def workload_a(cls, **overrides) -> "YcsbWorkload":
        """Update heavy: 50% read / 50% update (used in Fig. 7)."""
        return cls(name="workload-a", read_prop=0.5, update_prop=0.5,
                   **overrides)

    @classmethod
    def workload_b(cls, **overrides) -> "YcsbWorkload":
        """Read mostly: 95% read / 5% update (used in Fig. 8)."""
        return cls(name="workload-b", read_prop=0.95, update_prop=0.05,
                   **overrides)

    def chooser(self, rng: np.random.Generator):
        if self.distribution == "zipfian":
            return ScrambledZipfian(self.record_count, self.zipf_theta, rng)
        if self.distribution == "zipfian_exact":
            return ScrambledZipfian(self.record_count, self.zipf_theta, rng,
                                    exact=True)
        return Uniform(self.record_count, rng)

    def key(self, index: int) -> str:
        return f"user{index}"

    def value(self, rng: np.random.Generator) -> bytes:
        return rng.bytes(self.value_size)


class StalenessOracle:
    """Ground truth for 'did this get return the latest data?' (Fig. 8).

    ``note_put`` is called when a put is *acknowledged*; a get is judged
    against the versions acknowledged strictly before the get started — a
    read racing an in-flight put is not counted as stale.
    """

    def __init__(self):
        self._acks: dict[str, list[tuple[float, int]]] = {}
        self.latest_reads = 0
        self.outdated_reads = 0

    def note_put(self, key: str, version: int, ack_time: float) -> None:
        self._acks.setdefault(key, []).append((ack_time, version))

    def latest_before(self, key: str, t: float) -> int:
        best = 0
        for ack_time, version in self._acks.get(key, ()):
            if ack_time <= t and version > best:
                best = version
        return best

    def judge_get(self, key: str, returned_version: int,
                  started_at: float) -> bool:
        """Record and return whether the get saw the latest data."""
        latest = self.latest_before(key, started_at)
        if returned_version >= latest:
            self.latest_reads += 1
            return True
        self.outdated_reads += 1
        return False

    @property
    def total_reads(self) -> int:
        return self.latest_reads + self.outdated_reads

    @property
    def outdated_fraction(self) -> float:
        total = self.total_reads
        return self.outdated_reads / total if total else 0.0


@dataclass
class YcsbStats:
    ops: int = 0
    reads: int = 0
    updates: int = 0
    errors: int = 0
    #: error counts keyed by exception class name (TimeoutError,
    #: WrongShardError, LockServiceError, ...) — same total as ``errors``
    errors_by_type: dict[str, int] = field(default_factory=dict)
    read_latencies: list[float] = field(default_factory=list)
    update_latencies: list[float] = field(default_factory=list)

    def note_error(self, exc: BaseException) -> None:
        self.errors += 1
        kind = type(exc).__name__
        self.errors_by_type[kind] = self.errors_by_type.get(kind, 0) + 1


class YcsbClient:
    """One closed-loop YCSB client bound to a WieraClient."""

    def __init__(self, sim, wiera_client, workload: YcsbWorkload,
                 rng: np.random.Generator,
                 think_time: float = 0.0,
                 oracle: Optional[StalenessOracle] = None,
                 is_active=None, activity_poll: float = 1.0):
        self.sim = sim
        self.client = wiera_client
        self.workload = workload
        self.rng = rng
        self.think_time = think_time
        self.oracle = oracle
        self.is_active = is_active      # callable() -> bool, or None
        self.activity_poll = activity_poll
        self.chooser = workload.chooser(rng)
        self.stats = YcsbStats()
        self._proc = None

    def start(self) -> None:
        self._proc = self.sim.process(self._run(), name="ycsb-client")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("workload done")

    def load(self, count: Optional[int] = None) -> Generator:
        """Preload the record space (the YCSB load phase)."""
        n = count if count is not None else self.workload.record_count
        for i in range(n):
            yield from self.client.put(self.workload.key(i),
                                       self.workload.value(self.rng))

    def _run(self) -> Generator:
        try:
            while True:
                if self.is_active is not None and not self.is_active():
                    yield self.sim.timeout(self.activity_poll)
                    continue
                yield from self._one_op()
                if self.think_time > 0:
                    yield self.sim.timeout(
                        float(self.rng.exponential(self.think_time)))
        except Interrupt:
            return

    def _one_op(self) -> Generator:
        key = self.workload.key(self.chooser.next())
        if self.rng.random() < self.workload.read_prop:
            started = self.sim.now
            try:
                result = yield from self.client.get(key)
            except Exception as exc:
                self.stats.note_error(exc)
                return
            self.stats.ops += 1
            self.stats.reads += 1
            self.stats.read_latencies.append(result["latency"])
            if self.oracle is not None:
                self.oracle.judge_get(key, result["version"], started)
        else:
            value = self.workload.value(self.rng)
            try:
                result = yield from self.client.put(key, value)
            except Exception as exc:
                self.stats.note_error(exc)
                return
            self.stats.ops += 1
            self.stats.updates += 1
            self.stats.update_latencies.append(result["latency"])
            if self.oracle is not None:
                self.oracle.note_put(key, result["version"], self.sim.now)
