"""Workload generators used by the evaluation.

* :mod:`repro.workloads.zipf` — YCSB-style (scrambled) Zipfian key choosers.
* :mod:`repro.workloads.ycsb` — the Yahoo Cloud Serving Benchmark subset the
  paper uses (workload mixes, closed-loop clients, staleness oracle).
* :mod:`repro.workloads.clients` — geo-distributed client populations with
  normally-distributed diurnal activity (the Fig. 8 setup).
* :mod:`repro.workloads.sysbench` — SysBench-fileio-like random IO driver.
* :mod:`repro.workloads.rubis` — RUBiS-like auction application over the
  mini relational DB in :mod:`repro.db`.
"""

from repro.workloads.zipf import ScrambledZipfian, Zipfian
from repro.workloads.ycsb import (
    StalenessOracle,
    YcsbClient,
    YcsbWorkload,
)
from repro.workloads.clients import GeoClientPopulation, RegionActivity

__all__ = [
    "Zipfian",
    "ScrambledZipfian",
    "YcsbWorkload",
    "YcsbClient",
    "StalenessOracle",
    "GeoClientPopulation",
    "RegionActivity",
]
