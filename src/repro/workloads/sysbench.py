"""SysBench-fileio-like random IO benchmark (§5.4.1 / Fig. 11).

Closed-loop threads issue block-aligned random reads (and optionally
writes) against a :class:`~repro.fs.device.BlockFile` for a fixed duration
and report IOPS.  ``O_DIRECT`` semantics are the caller's responsibility
(use a direct-IO tier / minimal buffering), as in the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.fs.device import BlockFile
from repro.sim.kernel import Interrupt, Simulator


@dataclass
class SysbenchResult:
    ops: int = 0
    reads: int = 0
    writes: int = 0
    duration: float = 0.0
    latencies: list[float] = field(default_factory=list)

    @property
    def iops(self) -> float:
        return self.ops / self.duration if self.duration > 0 else 0.0

    @property
    def mean_latency(self) -> float:
        return (sum(self.latencies) / len(self.latencies)
                if self.latencies else 0.0)


class SysbenchFileIO:
    """sysbench --test=fileio --file-test-mode=rndrd/rndrw equivalent."""

    def __init__(self, sim: Simulator, blockfile: BlockFile,
                 threads: int = 4, read_prop: float = 1.0,
                 duration: float = 30.0,
                 rng: Optional[np.random.Generator] = None):
        if not 0.0 <= read_prop <= 1.0:
            raise ValueError("read_prop must be in [0, 1]")
        if threads < 1:
            raise ValueError("need at least one thread")
        self.sim = sim
        self.blockfile = blockfile
        self.threads = threads
        self.read_prop = read_prop
        self.duration = duration
        self.rng = rng or np.random.default_rng(0)
        self.result = SysbenchResult()
        self._write_payload = b"\xA5" * blockfile.block_size

    def run(self) -> Generator:
        """Run the benchmark; returns the populated SysbenchResult."""
        start = self.sim.now
        end = start + self.duration
        workers = [self.sim.process(self._worker(end), name=f"sysbench-{i}")
                   for i in range(self.threads)]
        yield self.sim.all_of(workers)
        self.result.duration = self.sim.now - start
        return self.result

    def _worker(self, end_time: float) -> Generator:
        res = self.result
        n = self.blockfile.nblocks
        try:
            while self.sim.now < end_time:
                index = int(self.rng.integers(0, n))
                t0 = self.sim.now
                if self.rng.random() < self.read_prop:
                    yield from self.blockfile.read_block(index)
                    res.reads += 1
                else:
                    yield from self.blockfile.write_block(
                        index, self._write_payload)
                    res.writes += 1
                res.ops += 1
                res.latencies.append(self.sim.now - t0)
        except Interrupt:
            return
