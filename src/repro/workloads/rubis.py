"""RUBiS-like auction-site workload (§5.4.2 / Fig. 12).

RUBiS is a multi-component web application (Apache + PHP front end, MySQL
back end) implementing eBay-style browsing, bidding, buying and
commenting.  We model the same pipeline on one Azure VM: each request
burns front-end CPU (bounded by the VM's cores and relative speed) and
then performs its transaction's row reads/writes against the
:class:`~repro.db.minidb.MiniDB` — whose pages live either on the local
attached disk or in remote AWS memory through Wiera, exactly the two
storage settings the paper compares.

The benchmark harness matches the paper's: 300 simulated clients, a timed
run with ramp-up and ramp-down excluded from the measured throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.db.minidb import MiniDB
from repro.net.vmprofiles import VmProfile
from repro.sim.kernel import Interrupt, Simulator
from repro.sim.primitives import Resource
from repro.workloads.zipf import ScrambledZipfian


@dataclass(frozen=True)
class TxnType:
    """One RUBiS interaction: its weight in the mix and its row touches."""

    name: str
    weight: float
    item_reads: int = 0
    user_reads: int = 0
    bid_reads: int = 0
    item_writes: int = 0
    bid_writes: int = 0
    cpu_units: float = 1.0     # relative front-end work


# A browsing-heavy mix patterned on RUBiS's default transition table
# (~85% read-only interactions).  Row counts include the pages a real
# query touches beyond the row itself — search/listing interactions
# return many rows, bid histories scan the bids table.
RUBIS_MIX: tuple[TxnType, ...] = (
    TxnType("Home", 0.16, cpu_units=0.5),
    TxnType("BrowseCategories", 0.10, item_reads=3, cpu_units=0.7),
    TxnType("SearchItemsInCategory", 0.22, item_reads=10, cpu_units=1.2),
    TxnType("ViewItem", 0.18, item_reads=1, user_reads=1, bid_reads=1),
    TxnType("ViewUserInfo", 0.08, user_reads=1, cpu_units=0.8),
    TxnType("ViewBidHistory", 0.07, item_reads=1, bid_reads=8),
    TxnType("PlaceBid", 0.08, item_reads=1, user_reads=1,
            bid_writes=1, item_writes=1, cpu_units=1.3),
    TxnType("BuyNow", 0.03, item_reads=1, user_reads=1, item_writes=1,
            cpu_units=1.2),
    TxnType("PutComment", 0.04, item_reads=1, user_reads=1, bid_writes=1,
            cpu_units=1.1),
    TxnType("RegisterItem", 0.04, user_reads=1, item_writes=2,
            cpu_units=1.5),
)


@dataclass
class RubisStats:
    requests: int = 0            # completed in the measurement window
    total_requests: int = 0      # including ramp-up/down
    errors: int = 0
    response_times: list[float] = field(default_factory=list)
    per_txn: dict = field(default_factory=dict)

    def mean_response(self) -> float:
        return (sum(self.response_times) / len(self.response_times)
                if self.response_times else 0.0)


class RubisApp:
    """The web/PHP/MySQL stack on one VM."""

    #: front-end CPU seconds per cpu_unit on a cpu_factor=1.0 VM
    BASE_CPU_TIME = 0.007

    def __init__(self, sim: Simulator, db: MiniDB, vm: VmProfile,
                 rng: Optional[np.random.Generator] = None,
                 items: int = 50_000, users: int = 50_000,
                 bids: int = 200_000):
        self.sim = sim
        self.db = db
        self.vm = vm
        self.rng = rng or np.random.default_rng(0)
        self.cpu = Resource(sim, capacity=max(1, vm.cpus))
        self.items = db.table("items") if "items" in db.tables else \
            db.create_table("items", row_size=1024, rows=items)
        self.users = db.table("users") if "users" in db.tables else \
            db.create_table("users", row_size=1024, rows=users)
        self.bids = db.table("bids") if "bids" in db.tables else \
            db.create_table("bids", row_size=512, rows=bids)
        self._item_chooser = ScrambledZipfian(items, 0.8, self.rng)
        self._weights = np.array([t.weight for t in RUBIS_MIX])
        self._weights = self._weights / self._weights.sum()
        self._next_bid = 0

    def pick_txn(self) -> TxnType:
        idx = int(self.rng.choice(len(RUBIS_MIX), p=self._weights))
        return RUBIS_MIX[idx]

    def _cpu_slice(self, units: float) -> Generator:
        service = self.BASE_CPU_TIME * units * self.vm.cpu_factor
        yield self.cpu.request()
        try:
            yield self.sim.timeout(service)
        finally:
            self.cpu.release()

    def handle(self, txn: TxnType) -> Generator:
        """Execute one interaction end to end; returns rows touched."""
        yield from self._cpu_slice(txn.cpu_units)
        touched = 0
        for _ in range(txn.item_reads):
            yield from self.items.read_row(self._item_chooser.next())
            touched += 1
        for _ in range(txn.user_reads):
            yield from self.users.read_row(
                int(self.rng.integers(0, self.users.rows)))
            touched += 1
        for _ in range(txn.bid_reads):
            yield from self.bids.read_row(
                int(self.rng.integers(0, self.bids.rows)))
            touched += 1
        for _ in range(txn.item_writes):
            row = self._item_chooser.next()
            yield from self.items.write_row(row, b"item-update")
            touched += 1
        for _ in range(txn.bid_writes):
            row = self._next_bid % self.bids.rows
            self._next_bid += 1
            yield from self.bids.write_row(row, b"bid-record")
            touched += 1
        return touched


class RubisBenchmark:
    """Closed-loop client pool with ramp-up/ramp-down windows."""

    def __init__(self, sim: Simulator, app: RubisApp, clients: int = 300,
                 think_time: float = 1.2, duration: float = 300.0,
                 ramp_up: float = 120.0, ramp_down: float = 60.0,
                 rng: Optional[np.random.Generator] = None):
        if ramp_up + ramp_down >= duration + ramp_up + ramp_down:
            pass  # durations are independent; nothing to validate here
        self.sim = sim
        self.app = app
        self.clients = clients
        self.think_time = think_time
        self.duration = duration
        self.ramp_up = ramp_up
        self.ramp_down = ramp_down
        self.rng = rng or np.random.default_rng(1)
        self.stats = RubisStats()

    @property
    def total_time(self) -> float:
        return self.ramp_up + self.duration + self.ramp_down

    def run(self) -> Generator:
        """Run the full benchmark; returns RubisStats with the measured
        throughput window = ``duration`` (ramps excluded)."""
        start = self.sim.now
        measure_from = start + self.ramp_up
        measure_to = measure_from + self.duration
        end = start + self.total_time
        workers = [
            self.sim.process(
                self._client(end, measure_from, measure_to,
                             np.random.default_rng(self.rng.integers(2**63))),
                name=f"rubis-client-{i}")
            for i in range(self.clients)]
        yield self.sim.all_of(workers)
        return self.stats

    @property
    def throughput(self) -> float:
        return self.stats.requests / self.duration

    def _client(self, end: float, measure_from: float,
                measure_to: float, rng: np.random.Generator) -> Generator:
        sim = self.sim
        try:
            # stagger arrivals over the ramp-up
            yield sim.timeout(float(rng.uniform(0, self.ramp_up)))
            while sim.now < end:
                txn = self.app.pick_txn()
                t0 = sim.now
                try:
                    yield from self.app.handle(txn)
                except Exception:
                    self.stats.errors += 1
                    continue
                elapsed = sim.now - t0
                self.stats.total_requests += 1
                if measure_from <= t0 < measure_to:
                    self.stats.requests += 1
                    self.stats.response_times.append(elapsed)
                    bucket = self.stats.per_txn.setdefault(
                        txn.name, {"count": 0, "time": 0.0})
                    bucket["count"] += 1
                    bucket["time"] += elapsed
                yield sim.timeout(float(rng.exponential(self.think_time)))
        except Interrupt:
            return
