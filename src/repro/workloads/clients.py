"""Geo-distributed client populations with time-varying activity.

The Fig. 8 / Table 3 experiment runs 10 clients per region and models "the
number of active clients ... with a normal distribution to mimic the
workload in different regions of the world" — activity rises and falls as
a Gaussian bell over time, peaking region after region (Asia East, then EU
West, then US West), like the sun moving across timezones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class RegionActivity:
    """Gaussian activity curve for one region's client pool."""

    region: str
    peak_time: float            # seconds: center of the bell
    sigma: float                # seconds: spread of the bell
    max_clients: int = 10
    min_clients: int = 0

    def active_clients(self, t: float) -> int:
        level = math.exp(-((t - self.peak_time) ** 2)
                         / (2.0 * self.sigma ** 2))
        count = round(self.max_clients * level)
        return max(self.min_clients, min(self.max_clients, count))


@dataclass
class GeoClientPopulation:
    """Activity curves for several regions, staggered in time."""

    activities: dict[str, RegionActivity] = field(default_factory=dict)

    @classmethod
    def staggered(cls, regions: list[str], first_peak: float,
                  stagger: float, sigma: float,
                  max_clients: int = 10,
                  min_clients: int = 0) -> "GeoClientPopulation":
        """Peaks at first_peak, first_peak+stagger, ... in region order."""
        pop = cls()
        for i, region in enumerate(regions):
            pop.activities[region] = RegionActivity(
                region=region, peak_time=first_peak + i * stagger,
                sigma=sigma, max_clients=max_clients,
                min_clients=min_clients)
        return pop

    def active_clients(self, region: str, t: float) -> int:
        return self.activities[region].active_clients(t)

    def is_active(self, region: str, client_index: int, t: float) -> bool:
        """Client ``i`` of a region is active when i < active count —
        clients wake in a fixed order, so activity is deterministic."""
        return client_index < self.active_clients(region, t)

    def activity_gate(self, sim, region: str, client_index: int):
        """A zero-arg callable suitable for YcsbClient's ``is_active``."""
        def gate() -> bool:
            return self.is_active(region, client_index, sim.now)
        return gate

    def busiest_region(self, t: float) -> str:
        return max(self.activities,
                   key=lambda r: (self.active_clients(r, t), r))
