"""The inter-worker message bridge: cross-group RPC over barriers.

Each worker process rebuilds the *entire* deployment identically (same
seed, same construction order), then installs a :class:`WorkerBridge`
that masks it by ownership:

* an outgoing RPC whose **source host is foreign** parks forever on a
  pending event — the replicated "shadow" copies of background loops
  (TSM heartbeats, monitors) freeze at their first send and consume no
  further CPU, while the owning worker runs the real copy;
* an outgoing RPC whose **destination host is foreign** runs its
  sender-side half locally — reachability check, egress-link
  serialization, network accounting (the egress accounting handoff: the
  sender owns the source host's egress link, so bandwidth queueing is
  computed exactly once, on the worker that owns it) — then ships
  ``(arrival_time, message)`` to the destination's worker at the next
  barrier and parks until the reply entry fires its pending event.

On the receiving side, entries are injected with
:meth:`~repro.sim.kernel.Simulator.call_at` in deterministic
``(arrival_time, origin_worker, sequence)`` order; a served call runs
the destination handler at its exact single-process arrival time, then
transmits the reply bytes through the (locally owned) destination
host's egress link and ships the reply arrival back.  All latency
arithmetic happens on whichever worker owns the transmitting host, so a
bridged round trip reproduces the single-process timeline exactly —
divergence is limited to error-return timing under faults (documented
in DESIGN.md).

Wire entries are plain picklable tuples batched per destination worker
per barrier — the multiprocessing analog of the PR 5 ``call_batch``
framing: one pickled list per (worker, window), never one IPC message
per call.
"""

from __future__ import annotations

import pickle
from typing import Generator

from repro.sim.rpc import Message, RpcError, RpcNode, _payload_size


class WorkerBridge:
    """Ownership mask + cross-worker mailbox of one worker process."""

    def __init__(self, dep, plan, worker_id: int):
        self.dep = dep
        self.sim = dep.sim
        self.network = dep.network
        self.plan = plan
        self.worker_id = worker_id
        self._my_regions = frozenset(plan.regions_of(worker_id))
        self._outbox: dict[int, list] = {
            w: [] for w in range(plan.workers) if w != worker_id}
        self._pending: dict[int, object] = {}  # seq -> waiting Event
        self._seq = 0
        # Cheap liveness counters surfaced in the merged report.
        self.calls_bridged = 0
        self.oneways_bridged = 0
        self.served = 0

    def install(self) -> None:
        """Activate the mask.  Requires the restrictions the equivalence
        contract is proven under: no tracing (span trees can't span
        processes) and no autoscaler (live topology changes would need
        map-epoch coordination across workers)."""
        if self.network.bridge is not None:
            raise RuntimeError("a bridge is already installed")
        obs = self.dep.obs
        if obs is not None and obs.tracer.enabled:
            raise RuntimeError("parallel mode requires tracing disabled")
        if self.dep.autoscalers:
            raise RuntimeError("parallel mode does not support autoscalers")
        self.network.bridge = self

    # -- ownership ---------------------------------------------------------
    def owns(self, host) -> bool:
        return host.region in self._my_regions

    def local(self, src_host, dst_host) -> bool:
        """True when the call never leaves this worker (the unmodified
        single-process path in rpc.py)."""
        return (src_host.region in self._my_regions
                and dst_host.region in self._my_regions)

    # -- outbound (called from RpcNode._call/_oneway) ----------------------
    def outbound_call(self, src_node: RpcNode, dst_node: RpcNode,
                      msg: Message, reply_size) -> Generator:
        if not self.owns(src_node.host):
            # Foreign-origin shadow process: park forever, zero CPU.
            yield self.sim.event()
            raise AssertionError("parked event fired")  # pragma: no cover
        self.calls_bridged += 1
        latency = yield from self.network.send_to_wire(
            src_node.host, dst_node.host, msg.size)
        seq = self._seq
        self._seq += 1
        waiter = self.sim.event()
        self._pending[seq] = waiter
        dest = self.plan.owner_of_region(dst_node.host.region)
        self._outbox[dest].append(
            ("call", seq, self.worker_id, self.sim.now + latency,
             msg.src, msg.dst, msg.method, msg.args, msg.size,
             msg.sent_at, reply_size))
        ok, value = yield waiter
        if not ok:
            raise value
        return value

    def outbound_oneway(self, src_node: RpcNode, dst_node: RpcNode,
                        msg: Message) -> Generator:
        if not self.owns(src_node.host):
            yield self.sim.event()
            raise AssertionError("parked event fired")  # pragma: no cover
        self.oneways_bridged += 1
        try:
            latency = yield from self.network.send_to_wire(
                src_node.host, dst_node.host, msg.size)
        except Exception:
            # Mirror RpcNode._oneway: network failure is the sender's to
            # swallow and count.
            src_node._dropped.inc()
            return
        seq = self._seq
        self._seq += 1
        dest = self.plan.owner_of_region(dst_node.host.region)
        self._outbox[dest].append(
            ("oneway", seq, self.worker_id, self.sim.now + latency,
             msg.src, msg.dst, msg.method, msg.args, msg.size,
             msg.sent_at, None))

    # -- barrier exchange (called by the runner) ---------------------------
    def take_outboxes(self) -> dict[int, list]:
        """Drain and return this window's per-destination entry lists."""
        out = {w: box for w, box in self._outbox.items() if box}
        for w in out:
            self._outbox[w] = []
        return out

    def inject(self, entries: list) -> None:
        """Schedule inbound entries (from every peer, one barrier's worth)
        in deterministic (arrival, origin worker, sequence) order."""
        now = self.sim.now
        for entry in sorted(entries, key=lambda e: (e[3], e[2], e[1])):
            arrive = entry[3]
            if arrive < now:
                raise RuntimeError(
                    f"lookahead violation: arrival {arrive} < now {now}")
            if entry[0] == "reply":
                self.sim.call_at(arrive, self._fire_reply, entry)
            else:
                self.sim.call_at(arrive, self._spawn_serve, entry)

    def _fire_reply(self, entry) -> None:
        _, seq, _origin, _arrive, ok, value = entry
        waiter = self._pending.pop(seq)
        waiter.succeed((ok, value))

    def _spawn_serve(self, entry) -> None:
        self.sim.process(self._serve(entry),
                         name=f"par:serve:{entry[6]}")

    def _serve(self, entry) -> Generator:
        """Run a bridged request on the owning side, at its exact
        single-process arrival time, and ship the reply back."""
        (kind, seq, origin, _arrive, src_name, dst_name, method, args,
         size, sent_at, reply_size) = entry
        self.served += 1
        nodes = self.network.nodes
        dst_node = nodes[dst_name]
        src_node = nodes[src_name]  # shadow object: host/placement only
        msg = Message(src=src_name, dst=dst_name, method=method,
                      args=args, size=size, sent_at=sent_at)
        try:
            result = yield from dst_node._dispatch(msg)
        except Exception as exc:
            if kind == "call":
                self._reply_error(origin, seq, dst_node, src_node, exc)
            return
        if kind == "oneway":
            return
        wire = reply_size
        if wire is None:
            wire = RpcNode.ENVELOPE + _payload_size(result)
        try:
            latency = yield from self.network.send_to_wire(
                dst_node.host, src_node.host, wire)
        except Exception as exc:
            self._reply_error(origin, seq, dst_node, src_node, exc)
            return
        self._outbox[origin].append(
            ("reply", seq, self.worker_id, self.sim.now + latency,
             True, result))

    def _reply_error(self, origin: int, seq: int, dst_node, src_node,
                     exc: BaseException) -> None:
        """Error replies carry no payload: deliver after one propagation
        latency (single-process raises at the caller as soon as the
        failure surfaces; the barrier protocol can't ship anything faster
        than the lookahead floor, so this is the closest conservative
        timing — fault-path-only, see the DESIGN.md contract)."""
        arrive = self.sim.now + self.network.oneway_latency(
            dst_node.host, src_node.host)
        self._outbox[origin].append(
            ("reply", seq, self.worker_id, arrive, False,
             _portable_exc(exc)))


def _portable_exc(exc: BaseException) -> BaseException:
    """An exception that survives the pickle hop, preserving the type
    when possible (client failover dispatches on exception types)."""
    try:
        clone = pickle.loads(pickle.dumps(exc))
        if isinstance(clone, BaseException):
            return exc
    except Exception:
        pass
    return RpcError(f"{type(exc).__name__}: {exc}")
