"""Region-group partitioning and the conservative-lookahead window.

A worker owns *all* hosts whose region falls in its group: Tiera servers
(every ``servers_per_region`` host), the Wiera/Zookeeper host, and
client/cohort hosts — so a cohort is automatically pinned to the worker
owning its home region, and intra-region traffic (the data-path bulk of
the open-loop cells: client -> local replica of the owning shard) never
crosses a process boundary.

The lookahead window is the safety bound of the time-sync protocol: any
message between hosts in *different* groups spends at least
``lookahead`` seconds of propagation latency in flight (one-way
topology latency + both NIC delays; runtime dynamics only ever add
delay).  Workers therefore simulate ``[kW, (k+1)W)`` windows
independently and exchange cross-group messages at each barrier — every
message entering the wire inside a window arrives strictly after the
barrier that ships it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PartitionPlan:
    """Deterministic assignment of region groups to workers."""

    workers: int
    #: worker index -> regions it owns
    groups: tuple[tuple[str, ...], ...]

    @classmethod
    def for_regions(cls, regions, workers: int) -> "PartitionPlan":
        """Round-robin the declared region order over ``workers`` groups.

        The same (regions, workers) input always yields the same plan —
        every worker computes it independently and they must agree.
        """
        ordered = list(dict.fromkeys(regions))
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        if workers > len(ordered):
            raise ValueError(
                f"workers={workers} exceeds {len(ordered)} regions")
        groups = [[] for _ in range(workers)]
        for i, region in enumerate(ordered):
            groups[i % workers].append(region)
        return cls(workers=workers,
                   groups=tuple(tuple(g) for g in groups))

    @classmethod
    def for_deployment(cls, dep, workers: int) -> "PartitionPlan":
        """Plan over the deployment's declared regions, then verify every
        host's region is covered (the Wiera host may live outside the
        declared list via ``wiera_region=``)."""
        regions = list(dep.regions)
        for host in dep.network.hosts.values():
            if host.region not in regions:
                regions.append(host.region)
        return cls.for_regions(regions, workers)

    # -- ownership ---------------------------------------------------------
    def owner_of_region(self, region: str) -> int:
        for worker, group in enumerate(self.groups):
            if region in group:
                return worker
        raise KeyError(f"region {region!r} not in any partition group")

    def regions_of(self, worker: int) -> tuple[str, ...]:
        return self.groups[worker]

    # -- lookahead ---------------------------------------------------------
    def lookahead(self, network) -> float:
        """Minimum one-way latency between any two hosts in different
        groups (dynamics excluded: injections only add delay, so the
        static floor stays safe under latency spikes)."""
        owner = {}
        for group_idx, group in enumerate(self.groups):
            for region in group:
                owner[region] = group_idx
        best = math.inf
        hosts = list(network.hosts.values())
        for i, a in enumerate(hosts):
            wa = owner[a.region]
            for b in hosts[i + 1:]:
                if owner[b.region] == wa:
                    continue
                lat = min(
                    network.oneway_latency(a, b, include_dynamics=False),
                    network.oneway_latency(b, a, include_dynamics=False))
                if lat < best:
                    best = lat
        if not math.isfinite(best):
            # Single group (workers=1): no cross-group edge to bound; any
            # window works, pick something that won't busy-loop barriers.
            return 1.0
        if best <= 0:
            raise ValueError(
                "cross-group latency floor is zero: two hosts in "
                "different groups are co-located — repartition so they "
                "share a worker")
        return best
