"""Parallel execution driver: one Simulator per worker process.

``run_parallel(build, duration, workers=N)`` partitions the deployment
into region groups (:class:`~repro.par.partition.PartitionPlan`), forks
one worker per group, and advances the workers in conservative-lookahead
windows: each worker runs its simulator ``window`` sim-seconds (the
minimum cross-group WAN latency), then all workers exchange the
cross-group messages their bridges collected (:class:`~repro.par.
bridge.WorkerBridge`) and continue.  Because every cross-group message
spends at least ``window`` in flight, nothing exchanged at a barrier can
arrive inside an already-simulated window — so each worker's event order
is exactly what a single-process run would produce for its partition.

The deployment is built once in the parent and inherited by forked
workers: every process holds a bit-identical replica (SPMD), masked by
the bridge so only owned-region components actually run.  Workers ship
back their owned cohorts' reports, their owned partition's store rows,
and a metrics dump; the parent merges them into one report whose store
digest, conservation counters, and acked-write digest equal the
single-process run's (the determinism contract — see DESIGN.md
"Parallel simulation").
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.bench.harness import Deployment, rows_digest
from repro.load.engine import aggregate_reports
from repro.obs.metrics import MetricsRegistry
from repro.par.bridge import WorkerBridge
from repro.par.partition import PartitionPlan
from repro.util.stats import OnlineStats


@dataclass
class ParallelResult:
    """One parallel (or single-process) run, merged."""

    workers: int
    #: the conservative-lookahead window used (0.0 when workers=1)
    window: float
    duration: float
    grace: float
    #: aggregate load report (:func:`repro.load.engine.aggregate_reports`)
    report: dict
    #: canonical converged-state digest (:meth:`Deployment.store_digest`)
    store_digest: str
    #: merged metrics (the parent deployment's registry, after merge)
    metrics: MetricsRegistry
    #: the parent's deployment replica (holds the merged metrics; its
    #: simulator clock never advanced past construction when workers>1)
    dep: Deployment
    #: wall-clock seconds of the measured run (construction excluded)
    wall_seconds: float
    #: kernel events processed, summed across workers
    events_processed: int
    per_worker: list = field(default_factory=list)

    @property
    def events_per_second(self) -> float:
        return self.events_processed / max(self.wall_seconds, 1e-12)


def run_parallel(build: Callable[[], Deployment], duration: float,
                 workers: Optional[int] = None, grace: float = 0.0,
                 window: Optional[float] = None,
                 namespaces: Optional[Sequence[str]] = None,
                 ) -> ParallelResult:
    """Build a deployment and run its load engine for ``duration``
    sim-seconds across ``workers`` processes.

    ``build`` must construct the deployment *and* its cohorts
    (``dep.add_cohort``) without starting them; ``workers`` defaults to
    the deployment's own ``workers=`` setting.  ``window`` overrides the
    computed lookahead (only smaller-than-lookahead values are safe —
    meant for tests).  ``grace`` drains in-flight stragglers after the
    measurement window, exactly like :meth:`LoadEngine.run`.
    """
    dep = build()
    n = workers if workers is not None else dep.workers
    if n < 1:
        raise ValueError(f"workers must be >= 1: {n}")
    if dep.load is None or len(dep.load) == 0:
        raise ValueError("run_parallel needs cohorts: build() must call "
                         "dep.add_cohort(...)")
    if n == 1:
        return _run_single(dep, duration, grace, namespaces)
    plan = PartitionPlan.for_deployment(dep, n)
    lookahead = plan.lookahead(dep.network)
    win = window if window is not None else lookahead
    if win > lookahead:
        raise ValueError(f"window {win} exceeds the safe lookahead "
                         f"{lookahead}")
    if "fork" not in multiprocessing.get_all_start_methods():
        raise RuntimeError(
            "run_parallel(workers>1) needs the fork start method: workers "
            "inherit the constructed deployment (spawn would have to "
            "pickle live simulators)")
    ctx = multiprocessing.get_context("fork")
    conns, procs = [], []
    for wid in range(n):
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, dep, plan, wid, duration, grace, win,
                  namespaces),
            name=f"repro-par-{wid}")
        proc.start()
        child_conn.close()
        conns.append(parent_conn)
        procs.append(proc)
    try:
        for wid, conn in enumerate(conns):
            msg = _recv(conn, wid, procs)
            if msg != ("ready", wid):
                raise RuntimeError(f"worker {wid}: bad handshake {msg!r}")
        # Wall clock starts after every worker is set up, so the speedup
        # measurement covers simulation, not fork/bootstrap overhead.
        wall_start = time.perf_counter()
        for conn in conns:
            conn.send("go")
        payloads = _coordinate(conns, procs)
        wall = time.perf_counter() - wall_start
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
            proc.join()
    return _merge(dep, plan, payloads, duration, grace, win, wall)


# -- single-process path (the workers=1 contract: run exactly what the
# -- load engine would run, so results are bit-identical to dep.load.run)
def _run_single(dep: Deployment, duration: float, grace: float,
                namespaces) -> ParallelResult:
    wall_start = time.perf_counter()
    report = dep.load.run(duration, grace=grace)
    wall = time.perf_counter() - wall_start
    return ParallelResult(
        workers=1, window=0.0, duration=duration, grace=grace,
        report=report,
        store_digest=dep.store_digest(namespaces=namespaces),
        metrics=dep.obs.metrics, dep=dep, wall_seconds=wall,
        events_processed=dep.sim.events_processed,
        per_worker=[{"worker": 0, "regions": tuple(dep.regions),
                     "events": dep.sim.events_processed,
                     "now": dep.sim.now,
                     "bridged": {"calls": 0, "oneways": 0, "served": 0}}])


# -- worker side ------------------------------------------------------------
def _worker_main(conn, dep: Deployment, plan: PartitionPlan, wid: int,
                 duration: float, grace: float, window: float,
                 namespaces) -> None:
    try:
        bridge = WorkerBridge(dep, plan, wid)
        bridge.install()
        owned = [c for c in dep.load
                 if plan.owner_of_region(c.spec.region) == wid]
        conn.send(("ready", wid))
        if conn.recv() != "go":
            raise RuntimeError("coordinator handshake failed")
        sim = dep.sim
        t0 = sim.now
        t_end = t0 + duration
        t_final = t_end + grace
        for cohort in owned:
            cohort.start()
        # Every worker computes the identical barrier schedule (same t0,
        # duration, grace, window), so the lock-step exchange below never
        # mismatches.  Windows clamp to hit t_end and t_final exactly;
        # smaller-than-lookahead windows are always safe.
        t = t0
        reports = None
        while True:
            boundary = t_end if t < t_end else t_final
            t = min(t + window, boundary)
            sim.run(until=t)
            if t == t_end and reports is None:
                # Every cross-group message with arrival <= t_end was
                # exchanged at an earlier barrier (arrivals strictly
                # exceed their shipping barrier) and has been processed,
                # so this snapshot sees exactly the single-process
                # measurement window.
                for cohort in owned:
                    cohort.stop()
                reports = [cohort.report() for cohort in owned]
            conn.send(("barrier", bridge.take_outboxes()))
            bridge.inject(conn.recv())
            if t >= t_final:
                # Entries injected at the final barrier can arrive at
                # exactly t_final; single-process run(until=t_final)
                # processes those, so we must too.
                sim.run(until=t_final)
                break
        conn.send(("done", {
            "worker": wid,
            "regions": plan.regions_of(wid),
            "cohorts": reports,
            "users": sum(c.spec.users for c in owned),
            "rows": dep.store_rows(namespaces=namespaces, detail=True,
                                   host_filter=bridge.owns),
            "metrics_end": dep.obs.metrics.dump_state(),
            "events": sim.events_processed,
            "now": sim.now,
            "t0": t0,
            "bridged": {"calls": bridge.calls_bridged,
                        "oneways": bridge.oneways_bridged,
                        "served": bridge.served},
        }))
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        finally:
            raise


# -- parent side ------------------------------------------------------------
def _recv(conn, wid: int, procs):
    try:
        msg = conn.recv()
    except EOFError:
        code = procs[wid].exitcode
        raise RuntimeError(
            f"worker {wid} died without reporting (exit code {code})")
    if isinstance(msg, tuple) and msg and msg[0] == "error":
        raise RuntimeError(f"worker {wid} failed:\n{msg[1]}")
    return msg


def _coordinate(conns, procs) -> list[dict]:
    """Drive the lock-step barrier protocol until every worker is done."""
    n = len(conns)
    while True:
        msgs = [_recv(conn, wid, procs) for wid, conn in enumerate(conns)]
        kinds = {m[0] for m in msgs}
        if kinds == {"done"}:
            return [m[1] for m in msgs]
        if kinds != {"barrier"}:
            raise RuntimeError(
                f"barrier protocol desync: workers sent {sorted(kinds)}")
        inboxes = [[] for _ in range(n)]
        for m in msgs:
            for dest, entries in m[1].items():
                inboxes[dest].extend(entries)
        for conn, box in zip(conns, inboxes):
            conn.send(box)


def _merge(dep: Deployment, plan: PartitionPlan, payloads: list[dict],
           duration: float, grace: float, window: float,
           wall: float) -> ParallelResult:
    """Fold per-worker payloads into one run-equivalent result.

    The parent's deployment replica never ran, so its registry still
    holds the exact shared post-construction baseline every worker
    started from: merged metrics = baseline + sum of per-worker deltas.
    """
    cohorts = sorted((c for p in payloads for c in p["cohorts"]),
                     key=lambda c: c["cohort"])
    report = aggregate_reports(cohorts,
                               sum(p["users"] for p in payloads),
                               duration)
    rows = [row for p in payloads for row in p["rows"]]
    registry = dep.obs.metrics
    base = {(kind, name, labels): state
            for kind, name, labels, state in registry.dump_state()}
    t0 = payloads[0]["t0"]
    for payload in payloads:
        _apply_worker_delta(registry, base, payload["metrics_end"], t0)
    return ParallelResult(
        workers=plan.workers, window=window, duration=duration,
        grace=grace, report=report, store_digest=rows_digest(rows),
        metrics=registry, dep=dep, wall_seconds=wall,
        events_processed=sum(p["events"] for p in payloads),
        per_worker=[{k: p[k] for k in
                     ("worker", "regions", "events", "now", "bridged")}
                    for p in payloads])


def _apply_worker_delta(registry: MetricsRegistry, base: dict,
                        end_rows: list[tuple], t0: float) -> None:
    """Add one worker's (end - shared baseline) onto the merge registry.

    Counters/gauges subtract numerically; histogram aggregates subtract
    by reversing the Chan combine (exact for count/mean/m2; min/max use
    the worker's end bounds, which is exact for the *merged* extremes
    because every sample lives in some worker's end state); ring samples
    taken from a worker are those observed after the fork point ``t0``
    (baseline samples are already present in the merge registry).
    """
    for kind, name, labels, state in end_rows:
        base_state = base.get((kind, name, labels))
        label_kw = dict(labels)
        if kind == "counter":
            delta = state - (base_state or 0)
            if delta:
                registry.counter(name, **label_kw).inc(delta)
        elif kind == "gauge":
            delta = state - (base_state if base_state is not None else 0.0)
            if delta:
                registry.gauge(name, **label_kw).add(delta)
        else:
            hist = registry.histogram(name, maxlen=state["maxlen"] or 2048,
                                      **label_kw)
            delta_stats = _stats_delta(
                base_state["stats"] if base_state else None, state["stats"])
            if delta_stats.count:
                hist.stats.merge(delta_stats)
            fresh = [tv for tv in state["ring"] if tv[0] > t0]
            if fresh:
                merged = sorted(list(hist._ring) + fresh,
                                key=lambda tv: tv[0])
                maxlen = hist._ring.maxlen
                hist._ring.clear()
                hist._ring.extend(merged[-maxlen:] if maxlen else merged)


def _stats_delta(base: Optional[OnlineStats],
                 end: OnlineStats) -> OnlineStats:
    """The accumulator of samples in ``end`` but not ``base`` (reverse of
    :meth:`OnlineStats.merge`), with ``end``'s min/max bounds."""
    out = OnlineStats()
    n1 = base.count if base is not None else 0
    n2 = end.count - n1
    if n2 <= 0:
        return out
    if n1 == 0:
        out.count = end.count
        out._mean = end._mean
        out._m2 = end._m2
        out.min = end.min
        out.max = end.max
        return out
    mean2 = (end.count * end._mean - n1 * base._mean) / n2
    delta = mean2 - base._mean
    out.count = n2
    out._mean = mean2
    out._m2 = max(end._m2 - base._m2 - delta * delta * n1 * n2 / end.count,
                  0.0)
    out.min = end.min
    out.max = end.max
    return out
