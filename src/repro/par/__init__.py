"""repro.par — multi-process sharded simulation (parallel kernel execution).

Partitions a deployment into region groups, runs one
:class:`~repro.sim.kernel.Simulator` per worker process, and
synchronizes the workers with conservative lookahead pinned to the
minimum cross-group WAN latency.  See ``run_parallel`` for the entry
point and DESIGN.md "Parallel simulation" for the protocol and the
determinism contract.
"""

from repro.par.partition import PartitionPlan
from repro.par.bridge import WorkerBridge
from repro.par.runner import ParallelResult, run_parallel

__all__ = ["PartitionPlan", "WorkerBridge", "ParallelResult",
           "run_parallel"]
