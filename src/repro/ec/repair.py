"""Background fragment repair for the erasure-coded redundancy plane.

Plain anti-entropy (:mod:`repro.core.consistency.repair`) compares
metadata digests — but a crashed host that wiped a volatile tier still
*advertises* the fragment version, only the bytes are gone.  The EC
repairer therefore checks actual readability: every ``interval`` seconds
each instance walks its manifests, and for each object where it is the
*repair leader* (the first alive fragment holder in index order — every
holder has the manifest, so exactly one leader emerges per object) it
verifies all ``n`` fragment slots via the ``check_readable`` RPC,
reconstructs anything missing from ``k`` survivors, and pushes the
rebuilt fragment back — to the original holder if it is alive again, or
onto a substitute instance otherwise (rewriting and re-broadcasting the
manifest to match).

Rebuilt fragments ship with a *bumped* ``last_modified``: the restarted
holder still has the old version's metadata, and last-write-wins would
reject a same-version push that is not strictly newer.
"""

from __future__ import annotations

from typing import Generator

from repro.ec.protocol import (decode_manifest, encode_manifest,
                               fragment_key, is_fragment_key)
from repro.ec.codec import Codec
from repro.obs.api import get_obs
from repro.sim.kernel import Interrupt
from repro.storage.backend import ObjectMissingError
from repro.tiera.objects import storage_key


class ECRepairer:
    """One fragment-repair loop for one Tiera instance."""

    def __init__(self, instance, protocol, interval: float):
        self.instance = instance
        self.protocol = protocol
        self.interval = interval
        self._proc = None
        self.rounds = 0
        self.fragments_rebuilt = 0
        metrics = get_obs(instance.sim).metrics
        labels = {"instance": instance.instance_id}
        self._m_rounds = metrics.counter("ec.repair_rounds", **labels)
        self._m_rebuilt = metrics.counter("ec.fragments_rebuilt", **labels)
        self._m_skipped = metrics.counter("ec.repair_skipped", **labels)

    def start(self) -> None:
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.instance.sim.process(
                self._run(), name=f"ec-repair:{self.instance.instance_id}")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("repairer stopped")
        self._proc = None

    def _run(self) -> Generator:
        try:
            while True:
                yield self.instance.sim.timeout(self.interval)
                yield from self.repair_round()
        except Interrupt:
            return

    # ------------------------------------------------------------------
    def repair_round(self) -> Generator:
        instance = self.instance
        self.rounds += 1
        self._m_rounds.inc()
        alive: dict[str, bool] = {instance.instance_id: True}
        for record in list(instance.meta.records()):
            key = record.key
            if is_fragment_key(key):
                continue
            meta = record.latest()
            if meta is None:
                continue
            try:
                data, vmeta, _ = yield from instance.read_version(
                    key, run_rules=False)
            except ObjectMissingError:
                continue  # unreadable manifest: the get-path fallback heals it
            manifest = decode_manifest(data)
            if manifest is None:
                continue
            try:
                yield from self._repair_object(key, vmeta, manifest, alive)
            except Exception:
                # One stubborn object must not starve the rest of the round.
                self._m_skipped.inc()

    def _is_alive(self, iid: str, alive: dict[str, bool]) -> Generator:
        cached = alive.get(iid)
        if cached is not None:
            return cached
            yield  # pragma: no cover
        peer = self.instance.peers.get(iid)
        if peer is None:
            alive[iid] = False
            return False
        try:
            yield self.instance.node.call(peer.node, "probe", {})
            alive[iid] = True
        except Exception:
            alive[iid] = False
        return alive[iid]

    def _local_readable(self, key: str, version: int) -> bool:
        instance = self.instance
        record = instance.meta.get_record(key)
        if record is None or not record.has_version(version):
            return False
        meta = record.versions[version]
        skey = storage_key(key, version)
        return any(skey in instance.tiers[t]
                   for t in meta.locations if t in instance.tiers)

    def _repair_object(self, key: str, vmeta, manifest: dict,
                       alive: dict[str, bool]) -> Generator:
        instance = self.instance
        k, m, size = manifest["k"], manifest["m"], manifest["size"]
        n = k + m
        version = vmeta.version
        frag_map = dict(manifest["frags"])

        # Leadership: the first *alive* holder in fragment-index order
        # repairs; everyone else skips this object this round.
        for idx in sorted(frag_map):
            holder = frag_map[idx]
            if holder == instance.instance_id:
                break
            holder_alive = yield from self._is_alive(holder, alive)
            if holder_alive:
                return  # an earlier holder is up — it leads
        else:
            return  # we hold no fragment of this object

        # Which slots are broken?  A slot is broken when it is unmapped,
        # its holder is down, or the holder no longer has readable bytes.
        missing: list[int] = []
        remote_checks: dict[str, list[int]] = {}
        for idx in range(n):
            holder = frag_map.get(idx)
            if holder == instance.instance_id:
                if not self._local_readable(fragment_key(key, idx), version):
                    missing.append(idx)
            elif holder is None:
                missing.append(idx)
            else:
                holder_alive = yield from self._is_alive(holder, alive)
                if holder_alive:
                    remote_checks.setdefault(holder, []).append(idx)
                else:
                    missing.append(idx)
        for holder, idxs in sorted(remote_checks.items()):
            peer = instance.peers[holder]
            items = [(fragment_key(key, idx), version) for idx in idxs]
            try:
                res = yield instance.node.call(peer.node, "check_readable",
                                               {"items": items})
            except Exception:
                missing.extend(idxs)
                continue
            gone = set(res["missing"])
            missing.extend(idx for idx in idxs
                           if fragment_key(key, idx) in gone)
        if not missing:
            return
        missing.sort()

        # Gather k readable fragments (nearest-first via the put ring) and
        # reconstruct the payload.
        available: dict[int, bytes] = {}
        order = sorted(
            (idx for idx in frag_map if idx not in missing),
            key=lambda idx: (0 if frag_map[idx] == instance.instance_id
                             else 1, idx))
        for idx in order:
            if len(available) >= k:
                break
            holder = frag_map[idx]
            fkey = fragment_key(key, idx)
            if holder == instance.instance_id:
                try:
                    frag, _, _ = yield from instance.read_version(
                        fkey, version, run_rules=False)
                    available[idx] = frag
                except Exception:
                    continue
            else:
                peer = instance.peers.get(holder)
                if peer is None:
                    continue
                try:
                    res = yield instance.node.call(
                        peer.node, "peer_get",
                        {"key": fkey, "version": version},
                        reply_size=Codec.fragment_length(size, k) + 512)
                    available[idx] = res["data"]
                except Exception:
                    continue
        if len(available) < k:
            self._m_skipped.inc()
            return  # unrepairable this round; try again next interval
        data = Codec.decode(available, k, n, size)
        fragments = Codec.encode(data, k, n)

        # Re-home each missing fragment: original holder if alive, else the
        # nearest live instance not already holding one.
        lm = instance.sim.now  # bumped so LWW accepts the reinstall
        used = set(frag_map.values())
        spares = [(iid, peer) for iid, peer in self.protocol.ring(instance)
                  if iid not in used]
        remap = False
        for idx in missing:
            holder = frag_map.get(idx)
            target, peer = None, None
            if holder is not None:
                holder_alive = yield from self._is_alive(holder, alive)
                if holder_alive:
                    target, peer = holder, instance.peers.get(holder)
            while target is None and spares:
                iid, spare_peer = spares.pop(0)
                spare_alive = yield from self._is_alive(iid, alive)
                if spare_alive:
                    target, peer = iid, spare_peer
            if target is None:
                self._m_skipped.inc()
                continue
            fkey = fragment_key(key, idx)
            if target == instance.instance_id:
                record = instance.meta.get_record(fkey)
                if record is not None and record.has_version(version):
                    yield from instance.purge_version(fkey, version)
                yield from instance.local_put(
                    fkey, fragments[idx], version=version,
                    origin=instance.instance_id, last_modified=lm)
            else:
                args = {"key": fkey, "version": version,
                        "last_modified": lm,
                        "origin": instance.instance_id,
                        "data": fragments[idx]}
                try:
                    results = yield instance.node.call_batch(
                        peer.node,
                        [("replica_update", args,
                          len(fragments[idx]) + 512)])
                except Exception:
                    self._m_skipped.inc()
                    continue
                if not results[0].get("ok"):
                    self._m_skipped.inc()
                    continue
            if frag_map.get(idx) != target:
                frag_map[idx] = target
                remap = True
            used.add(target)
            self.fragments_rebuilt += 1
            self._m_rebuilt.inc()

        if remap:
            manifest_bytes = encode_manifest(k, m, size, frag_map)
            yield from instance.purge_version(key, version)
            yield from instance.local_put(key, manifest_bytes,
                                          version=version,
                                          origin=instance.instance_id,
                                          last_modified=lm)
            margs = {"key": key, "version": version, "last_modified": lm,
                     "origin": instance.instance_id, "data": manifest_bytes}
            for iid, peer in self.protocol.ring(instance)[1:]:
                peer_alive = yield from self._is_alive(iid, alive)
                if not peer_alive:
                    continue
                try:
                    yield instance.node.call_batch(
                        peer.node, [("replica_update", margs,
                                     len(manifest_bytes) + 512)])
                except Exception:
                    pass
