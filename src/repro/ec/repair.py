"""Background fragment repair for the erasure-coded redundancy plane.

Plain anti-entropy (:mod:`repro.core.consistency.repair`) compares
metadata digests — but a crashed host that wiped a volatile tier still
*advertises* the fragment version, only the bytes are gone.  The EC
repairer therefore checks actual readability: every ``interval`` seconds
each instance walks its manifests, and for each object where it is the
*repair leader* (the first alive fragment holder in index order — every
holder has the manifest, so exactly one leader emerges per object) it
verifies all ``n`` fragment slots via the ``check_readable`` RPC,
reconstructs anything missing from ``k`` survivors, and pushes the
rebuilt fragment back — to the original holder if it is alive again, or
onto a substitute instance otherwise (rewriting and re-broadcasting the
manifest to match).

Rebuilt fragments ship with a *bumped* ``last_modified``: the restarted
holder still has the old version's metadata, and last-write-wins would
reject a same-version push that is not strictly newer.

Two execution strategies share the scan/leadership/repair logic:

``repair_concurrency = 1`` (default)
    The original strictly serial walk — one object fully probed,
    gathered, decoded, and pushed before the next begins.  This path is
    golden-pinned (``tests/golden/ec_repair_serial.json``): it must stay
    bit-identical to the seed repairer, event for event.

``repair_concurrency = W > 1``
    A bounded-concurrency pipeline.  Each round probes every peer once
    (in parallel), batches all ``check_readable`` items per holder into
    a single ``call_batch`` envelope, then drives a window of up to
    ``W`` in-flight object repairs via ``AnyOf`` completion.  Instead of
    pulling ``k`` whole fragments to the leader and pushing the rebuilt
    one back, the leader dispatches a ``reconstruct_fragment`` RPC to
    the target holder, which pulls only the fragments *it* is missing
    and installs the result locally (the codec's target-row
    :meth:`~repro.ec.codec.Codec.rebuild` fast path).  Manifest changes
    are broadcast as per-round batched ``manifest_remap`` deltas rather
    than one full manifest per object per peer.

A version bump racing the repair must never resurrect the stale
version's fragments: both paths re-check the manifest's latest version
(a pure metadata lookup) before every install and give up with
``ec.repair_superseded`` when the object moved on, and the
``reconstruct_fragment`` handler refuses on the target side as well.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from repro.ec.protocol import (decode_manifest, encode_manifest,
                               fragment_key, is_fragment_key)
from repro.ec.codec import Codec
from repro.obs.api import get_obs
from repro.obs.trace import NULL_SPAN
from repro.sim.kernel import Interrupt
from repro.storage.backend import ObjectMissingError
from repro.tiera.objects import storage_key

#: wire size of one (key, version) item inside a batched check_readable
CHECK_ITEM_SIZE = 16
#: envelope share of one batched check_readable / manifest_remap entry
BATCH_ENTRY_SIZE = 64


class ECRepairer:
    """One fragment-repair loop for one Tiera instance."""

    def __init__(self, instance, protocol, interval: float,
                 concurrency: int = 1):
        self.instance = instance
        self.protocol = protocol
        self.interval = interval
        self.concurrency = max(1, int(concurrency))
        self._proc = None
        self.rounds = 0
        self.fragments_rebuilt = 0
        obs = get_obs(instance.sim)
        self._tracer = obs.tracer
        metrics = obs.metrics
        labels = {"instance": instance.instance_id}
        self._m_rounds = metrics.counter("ec.repair_rounds", **labels)
        self._m_rebuilt = metrics.counter("ec.fragments_rebuilt", **labels)
        # Distinct failure counters (one overloaded "skipped" before):
        # gather couldn't reach k survivors / no live target or push
        # refused / an object's repair raised / a racing write superseded
        # the version mid-repair.
        self._m_unrepairable = metrics.counter("ec.repair_unrepairable",
                                               **labels)
        self._m_push_failed = metrics.counter("ec.repair_push_failed",
                                              **labels)
        self._m_errors = metrics.counter("ec.repair_errors", **labels)
        self._m_superseded = metrics.counter("ec.repair_superseded",
                                             **labels)
        self._m_bytes = metrics.counter("ec.repair_bytes_moved", **labels)
        self._h_object = metrics.histogram("ec.repair_object_seconds",
                                           **labels)
        self._h_round = metrics.histogram("ec.repair_round_seconds",
                                          **labels)

    def start(self) -> None:
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.instance.sim.process(
                self._run(), name=f"ec-repair:{self.instance.instance_id}")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("repairer stopped")
        self._proc = None

    def _run(self) -> Generator:
        try:
            while True:
                yield self.instance.sim.timeout(self.interval)
                yield from self.repair_round()
        except Interrupt:
            return

    # ------------------------------------------------------------------
    def repair_round(self) -> Generator:
        self.rounds += 1
        self._m_rounds.inc()
        span = (self._tracer.span("ec:repair_round", cat="ec",
                                  component=self.instance.instance_id)
                if self._tracer.enabled else NULL_SPAN)
        start = self.instance.sim.now
        with span:
            if self.concurrency <= 1:
                yield from self._round_serial()
            else:
                yield from self._round_pipelined()
        self._h_round.observe(self.instance.sim.now - start)

    def _superseded(self, key: str, version: int) -> bool:
        """True when ``version`` is no longer the object's latest — a
        racing write moved the manifest on; repairing it would resurrect
        stale fragments.  Pure metadata lookup, consumes no sim time."""
        record = self.instance.meta.get_record(key)
        return record is None or record.latest_version != version

    def _scan_manifests(self) -> Generator:
        """Yield through local manifest reads; return [(key, vmeta,
        manifest)] for every EC object this instance has a manifest of."""
        instance = self.instance
        found = []
        for record in list(instance.meta.records()):
            key = record.key
            if is_fragment_key(key):
                continue
            meta = record.latest()
            if meta is None:
                continue
            try:
                data, vmeta, _ = yield from instance.read_version(
                    key, run_rules=False)
            except ObjectMissingError:
                continue  # unreadable manifest: the get-path fallback heals it
            manifest = decode_manifest(data)
            if manifest is None:
                continue
            found.append((key, vmeta, manifest))
        return found

    # ------------------------------------------------------------------
    # Serial strategy (seed behaviour, golden-pinned)
    # ------------------------------------------------------------------
    def _round_serial(self) -> Generator:
        # NOTE: the manifest read and the repair are interleaved per
        # object, exactly like the seed repairer — scanning everything
        # up front would reorder network sends and break the golden pin.
        instance = self.instance
        alive: dict[str, bool] = {instance.instance_id: True}
        ring = self.protocol.ring(instance)
        for record in list(instance.meta.records()):
            key = record.key
            if is_fragment_key(key):
                continue
            meta = record.latest()
            if meta is None:
                continue
            try:
                data, vmeta, _ = yield from instance.read_version(
                    key, run_rules=False)
            except ObjectMissingError:
                continue  # unreadable manifest: the get-path fallback heals it
            manifest = decode_manifest(data)
            if manifest is None:
                continue
            span = (self._tracer.span("ec:repair_object", cat="ec",
                                      component=instance.instance_id,
                                      key=key)
                    if self._tracer.enabled else NULL_SPAN)
            start = instance.sim.now
            try:
                with span:
                    yield from self._repair_object(key, vmeta, manifest,
                                                   alive, ring)
            except Exception:
                # One stubborn object must not starve the rest of the round.
                self._m_errors.inc()
            self._h_object.observe(instance.sim.now - start)

    def _is_alive(self, iid: str, alive: dict[str, bool]) -> Generator:
        cached = alive.get(iid)
        if cached is not None:
            return cached
            yield  # pragma: no cover
        peer = self.instance.peers.get(iid)
        if peer is None:
            alive[iid] = False
            return False
        try:
            yield self.instance.node.call(peer.node, "probe", {})
            alive[iid] = True
        except Exception:
            alive[iid] = False
        return alive[iid]

    def _local_readable(self, key: str, version: int) -> bool:
        instance = self.instance
        record = instance.meta.get_record(key)
        if record is None or not record.has_version(version):
            return False
        meta = record.versions[version]
        skey = storage_key(key, version)
        return any(skey in instance.tiers[t]
                   for t in meta.locations if t in instance.tiers)

    def _repair_object(self, key: str, vmeta, manifest: dict,
                       alive: dict[str, bool], ring: list) -> Generator:
        instance = self.instance
        k, m, size = manifest["k"], manifest["m"], manifest["size"]
        n = k + m
        version = vmeta.version
        frag_map = dict(manifest["frags"])
        if self._superseded(key, version):
            self._m_superseded.inc()
            return

        # Leadership: the first *alive* holder in fragment-index order
        # repairs; everyone else skips this object this round.
        for idx in sorted(frag_map):
            holder = frag_map[idx]
            if holder == instance.instance_id:
                break
            holder_alive = yield from self._is_alive(holder, alive)
            if holder_alive:
                return  # an earlier holder is up — it leads
        else:
            return  # we hold no fragment of this object

        # Which slots are broken?  A slot is broken when it is unmapped,
        # its holder is down, or the holder no longer has readable bytes.
        missing: list[int] = []
        remote_checks: dict[str, list[int]] = {}
        for idx in range(n):
            holder = frag_map.get(idx)
            if holder == instance.instance_id:
                if not self._local_readable(fragment_key(key, idx), version):
                    missing.append(idx)
            elif holder is None:
                missing.append(idx)
            else:
                holder_alive = yield from self._is_alive(holder, alive)
                if holder_alive:
                    remote_checks.setdefault(holder, []).append(idx)
                else:
                    missing.append(idx)
        for holder, idxs in sorted(remote_checks.items()):
            peer = instance.peers[holder]
            items = [(fragment_key(key, idx), version) for idx in idxs]
            try:
                res = yield instance.node.call(peer.node, "check_readable",
                                               {"items": items})
            except Exception:
                missing.extend(idxs)
                continue
            gone = set(res["missing"])
            missing.extend(idx for idx in idxs
                           if fragment_key(key, idx) in gone)
        if not missing:
            return
        missing.sort()

        # Gather k readable fragments (nearest-first via the put ring) and
        # reconstruct the payload.
        available: dict[int, bytes] = {}
        order = sorted(
            (idx for idx in frag_map if idx not in missing),
            key=lambda idx: (0 if frag_map[idx] == instance.instance_id
                             else 1, idx))
        for idx in order:
            if len(available) >= k:
                break
            holder = frag_map[idx]
            fkey = fragment_key(key, idx)
            if holder == instance.instance_id:
                try:
                    frag, _, _ = yield from instance.read_version(
                        fkey, version, run_rules=False)
                    available[idx] = frag
                except Exception:
                    continue
            else:
                peer = instance.peers.get(holder)
                if peer is None:
                    continue
                try:
                    res = yield instance.node.call(
                        peer.node, "peer_get",
                        {"key": fkey, "version": version},
                        reply_size=Codec.fragment_length(size, k) + 512)
                    available[idx] = res["data"]
                    self._m_bytes.inc(len(res["data"]))
                except Exception:
                    continue
        if len(available) < k:
            self._m_unrepairable.inc()
            return  # unrepairable this round; try again next interval
        data = Codec.decode(available, k, n, size)
        fragments = Codec.encode(data, k, n)
        if self._superseded(key, version):
            self._m_superseded.inc()
            return

        # Re-home each missing fragment: original holder if alive, else the
        # nearest live instance not already holding one.
        lm = instance.sim.now  # bumped so LWW accepts the reinstall
        used = set(frag_map.values())
        spares = deque((iid, peer) for iid, peer in ring
                       if iid not in used)
        remap = False
        for idx in missing:
            holder = frag_map.get(idx)
            target, peer = None, None
            if holder is not None:
                holder_alive = yield from self._is_alive(holder, alive)
                if holder_alive:
                    target, peer = holder, instance.peers.get(holder)
            while target is None and spares:
                iid, spare_peer = spares.popleft()
                spare_alive = yield from self._is_alive(iid, alive)
                if spare_alive:
                    target, peer = iid, spare_peer
            if target is None:
                self._m_push_failed.inc()
                continue
            if self._superseded(key, version):
                self._m_superseded.inc()
                return
            fkey = fragment_key(key, idx)
            if target == instance.instance_id:
                record = instance.meta.get_record(fkey)
                if record is not None and record.has_version(version):
                    yield from instance.purge_version(fkey, version)
                yield from instance.local_put(
                    fkey, fragments[idx], version=version,
                    origin=instance.instance_id, last_modified=lm)
            else:
                args = {"key": fkey, "version": version,
                        "last_modified": lm,
                        "origin": instance.instance_id,
                        "data": fragments[idx]}
                try:
                    results = yield instance.node.call_batch(
                        peer.node,
                        [("replica_update", args,
                          len(fragments[idx]) + 512)])
                except Exception:
                    self._m_push_failed.inc()
                    continue
                if not results[0].get("ok"):
                    self._m_push_failed.inc()
                    continue
                self._m_bytes.inc(len(fragments[idx]))
            if frag_map.get(idx) != target:
                frag_map[idx] = target
                remap = True
            used.add(target)
            self.fragments_rebuilt += 1
            self._m_rebuilt.inc()

        if remap:
            if self._superseded(key, version):
                self._m_superseded.inc()
                return
            manifest_bytes = encode_manifest(k, m, size, frag_map)
            yield from instance.purge_version(key, version)
            yield from instance.local_put(key, manifest_bytes,
                                          version=version,
                                          origin=instance.instance_id,
                                          last_modified=lm)
            margs = {"key": key, "version": version, "last_modified": lm,
                     "origin": instance.instance_id, "data": manifest_bytes}
            for iid, peer in ring[1:]:
                peer_alive = yield from self._is_alive(iid, alive)
                if not peer_alive:
                    continue
                try:
                    yield instance.node.call_batch(
                        peer.node, [("replica_update", margs,
                                     len(manifest_bytes) + 512)])
                    self._m_bytes.inc(len(manifest_bytes))
                except Exception:
                    pass

    # ------------------------------------------------------------------
    # Pipelined strategy (repair_concurrency > 1)
    # ------------------------------------------------------------------
    def _round_pipelined(self) -> Generator:
        instance = self.instance
        sim = instance.sim

        # Phase 1: scan local manifests (local tier reads only).
        work = yield from self._scan_manifests()
        if not work:
            return

        # Phase 2: probe every peer once, all probes in flight together.
        # Every later decision (leadership, broken slots, spare choice,
        # manifest push targets) reuses this one round-level cache — no
        # per-object re-probing.
        alive: dict[str, bool] = {instance.instance_id: True}
        yield from self._probe_all(alive)
        ring = self.protocol.ring(instance)

        # Phase 3: leadership filter, then one batched check_readable per
        # holder covering every led object's slots in a single envelope.
        led = [item for item in work
               if self._leads(item[2]["frags"], alive)]
        if not led:
            return
        readable = yield from self._check_batch(led, alive)

        queue: deque = deque()
        for key, vmeta, manifest in led:
            missing = self._broken_slots(key, vmeta.version, manifest,
                                         alive, readable)
            if missing:
                queue.append((key, vmeta, manifest, missing))
        if not queue:
            return

        # Phase 4: repair window — up to W objects in flight, each worker
        # pulling the next object as soon as its current one completes.
        remaps: list = []
        workers = [sim.process(
            self._repair_worker(queue, alive, ring, remaps),
            name=f"ec-repair-w{i}:{instance.instance_id}")
            for i in range(min(self.concurrency, len(queue)))]
        pending = [p for p in workers if p.is_alive]
        while pending:
            yield sim.any_of(pending)
            pending = [p for p in pending if p.is_alive]

        # Phase 5: flush manifest remap deltas, one batch per peer.
        if remaps:
            yield from self._flush_remaps(remaps, alive, ring)

    def _probe_all(self, alive: dict[str, bool]) -> Generator:
        instance = self.instance
        calls = []
        for iid in sorted(instance.peers):
            call = instance.node.call(instance.peers[iid].node, "probe", {})
            call.defuse()
            calls.append((iid, call))
        for iid, call in calls:
            try:
                yield call
                alive[iid] = True
            except Exception:
                alive[iid] = False

    def _leads(self, frag_map: dict, alive: dict[str, bool]) -> bool:
        me = self.instance.instance_id
        for idx in sorted(frag_map):
            holder = frag_map[idx]
            if holder == me:
                return True
            if alive.get(holder):
                return False
        return False  # we hold no fragment of this object

    def _check_batch(self, led: list, alive: dict[str, bool]) -> Generator:
        """One ``check_readable`` entry per holder spanning all led
        objects; returns the set of (holder, fragment-key) pairs whose
        bytes the holder confirmed readable."""
        instance = self.instance
        by_holder: dict[str, list[tuple[str, int]]] = {}
        for key, vmeta, manifest in led:
            for idx, holder in manifest["frags"].items():
                if holder == instance.instance_id or not alive.get(holder):
                    continue
                by_holder.setdefault(holder, []).append(
                    (fragment_key(key, idx), vmeta.version))
        readable: set[tuple[str, str]] = set()
        calls = []
        for holder in sorted(by_holder):
            items = by_holder[holder]
            size = BATCH_ENTRY_SIZE + CHECK_ITEM_SIZE * len(items)
            call = instance.node.call_batch(
                instance.peers[holder].node,
                [("check_readable", {"items": items}, size)])
            call.defuse()
            calls.append((holder, items, call))
        for holder, items, call in calls:
            try:
                results = yield call
                entry = results[0]
                if not entry.get("ok"):
                    raise RuntimeError(entry.get("error"))
                gone = set(entry["result"]["missing"])
            except Exception:
                alive[holder] = False  # all its slots count as broken
                continue
            readable.update((holder, fkey) for fkey, _ in items
                            if fkey not in gone)
        return readable

    def _broken_slots(self, key: str, version: int, manifest: dict,
                      alive: dict[str, bool],
                      readable: set[tuple[str, str]]) -> list[int]:
        instance = self.instance
        n = manifest["k"] + manifest["m"]
        frag_map = manifest["frags"]
        missing = []
        for idx in range(n):
            holder = frag_map.get(idx)
            fkey = fragment_key(key, idx)
            if holder == instance.instance_id:
                if not self._local_readable(fkey, version):
                    missing.append(idx)
            elif holder is None or not alive.get(holder):
                missing.append(idx)
            elif (holder, fkey) not in readable:
                missing.append(idx)
        return missing

    def _repair_worker(self, queue: deque, alive: dict[str, bool],
                       ring: list, remaps: list) -> Generator:
        instance = self.instance
        while queue:
            key, vmeta, manifest, missing = queue.popleft()
            span = (self._tracer.span("ec:repair_object", cat="ec",
                                      component=instance.instance_id,
                                      key=key)
                    if self._tracer.enabled else NULL_SPAN)
            start = instance.sim.now
            try:
                with span:
                    yield from self._repair_object_pipelined(
                        key, vmeta, manifest, missing, alive, ring, remaps)
            except Exception:
                self._m_errors.inc()
            self._h_object.observe(instance.sim.now - start)

    def _repair_object_pipelined(self, key: str, vmeta, manifest: dict,
                                 missing: list[int],
                                 alive: dict[str, bool], ring: list,
                                 remaps: list) -> Generator:
        instance = self.instance
        k, m, size = manifest["k"], manifest["m"], manifest["size"]
        n = k + m
        version = vmeta.version
        frag_map = dict(manifest["frags"])
        if self._superseded(key, version):
            self._m_superseded.inc()
            return

        # Survivors were verified readable by the round's batched check.
        sources = sorted((idx, holder) for idx, holder in frag_map.items()
                         if idx not in missing)
        if len(sources) < k:
            self._m_unrepairable.inc()
            return

        lm = instance.sim.now  # bumped so LWW accepts the reinstall
        used = set(frag_map.values())
        spares = deque((iid, peer) for iid, peer in ring
                       if iid not in used and alive.get(iid))
        remap: dict[int, str] = {}
        gathered: Optional[dict[int, bytes]] = None
        rebuilt_all: Optional[list[bytes]] = None

        for idx in sorted(missing):
            holder = frag_map.get(idx)
            target, peer = None, None
            if holder is not None and alive.get(holder):
                target, peer = holder, instance.peers.get(holder)
            if target is None and spares:
                target, peer = spares.popleft()
            if target is None:
                self._m_push_failed.inc()
                continue
            fkey = fragment_key(key, idx)
            installed = False

            if peer is not None and gathered is None:
                # Holder-local reconstruction: the target pulls only the
                # fragments it is missing and installs the result itself —
                # no fragment bytes transit the leader at all.
                args = {"key": key, "version": version, "k": k, "m": m,
                        "size": size, "index": idx, "sources": sources,
                        "last_modified": lm,
                        "origin": instance.instance_id}
                try:
                    res = yield instance.node.call(
                        peer.node, "reconstruct_fragment", args)
                except Exception:
                    res = None
                if res is not None and res.get("ok"):
                    self._m_bytes.inc(res.get("pulled", 0))
                    installed = True
                elif (res is not None
                      and res.get("reason") == "superseded"):
                    self._m_superseded.inc()
                    return
                # any other failure: fall back to coordinator repair

            if not installed:
                if gathered is None:
                    gathered = yield from self._gather(
                        key, version, k, size, sources)
                    if gathered is None:
                        self._m_unrepairable.inc()
                        return
                    if len(missing) > 1:
                        # Several slots lost: one decode + one re-encode
                        # beats len(missing) target-row rebuilds.
                        data = Codec.decode(gathered, k, n, size)
                        rebuilt_all = Codec.encode(data, k, n)
                frag = (rebuilt_all[idx] if rebuilt_all is not None
                        else Codec.rebuild(gathered, k, n, size, idx))
                if self._superseded(key, version):
                    self._m_superseded.inc()
                    return
                if peer is None:  # target is this instance
                    record = instance.meta.get_record(fkey)
                    if record is not None and record.has_version(version):
                        yield from instance.purge_version(fkey, version)
                    yield from instance.local_put(
                        fkey, frag, version=version,
                        origin=instance.instance_id, last_modified=lm)
                else:
                    args = {"key": fkey, "version": version,
                            "last_modified": lm,
                            "origin": instance.instance_id, "data": frag}
                    try:
                        results = yield instance.node.call_batch(
                            peer.node,
                            [("replica_update", args, len(frag) + 512)])
                    except Exception:
                        self._m_push_failed.inc()
                        continue
                    if not results[0].get("ok"):
                        self._m_push_failed.inc()
                        continue
                    self._m_bytes.inc(len(frag))

            if frag_map.get(idx) != target:
                frag_map[idx] = target
                remap[idx] = target
            used.add(target)
            self.fragments_rebuilt += 1
            self._m_rebuilt.inc()

        if remap:
            if self._superseded(key, version):
                self._m_superseded.inc()
                return
            manifest_bytes = encode_manifest(k, m, size, frag_map)
            yield from instance.purge_version(key, version)
            yield from instance.local_put(key, manifest_bytes,
                                          version=version,
                                          origin=instance.instance_id,
                                          last_modified=lm)
            remaps.append((key, version, remap, lm))

    def _gather(self, key: str, version: int, k: int, size: int,
                sources: list[tuple[int, str]]) -> Generator:
        """Coordinator-side fragment gather: local reads first, then one
        parallel wave of k-|local| pulls, then sequential replacements.
        Returns {index: bytes} with >= k entries, or None."""
        instance = self.instance
        fraglen = Codec.fragment_length(size, k)
        available: dict[int, bytes] = {}
        remote: list[tuple[int, str]] = []
        for idx, holder in sources:
            if holder == instance.instance_id:
                if len(available) >= k:
                    break
                try:
                    frag, _, _ = yield from instance.read_version(
                        fragment_key(key, idx), version, run_rules=False)
                    available[idx] = frag
                except Exception:
                    continue
            else:
                remote.append((idx, holder))
        need = k - len(available)
        calls = []
        for idx, holder in remote[:max(need, 0)]:
            peer = instance.peers.get(holder)
            if peer is None:
                continue
            call = instance.node.call(
                peer.node, "peer_get",
                {"key": fragment_key(key, idx), "version": version},
                reply_size=fraglen + 512)
            call.defuse()
            calls.append((idx, call))
        for idx, call in calls:
            try:
                res = yield call
                available[idx] = res["data"]
                self._m_bytes.inc(len(res["data"]))
            except Exception:
                continue
        cursor = max(need, 0)
        while len(available) < k and cursor < len(remote):
            idx, holder = remote[cursor]
            cursor += 1
            peer = instance.peers.get(holder)
            if peer is None or idx in available:
                continue
            try:
                res = yield instance.node.call(
                    peer.node, "peer_get",
                    {"key": fragment_key(key, idx), "version": version},
                    reply_size=fraglen + 512)
                available[idx] = res["data"]
                self._m_bytes.inc(len(res["data"]))
            except Exception:
                continue
        return available if len(available) >= k else None

    def _flush_remaps(self, remaps: list, alive: dict[str, bool],
                      ring: list) -> Generator:
        """Broadcast the round's manifest changes as batched deltas: one
        ``manifest_remap`` entry per repaired object, one envelope per
        peer — instead of one full manifest push per object per peer.
        Peers that cannot apply a delta get the full manifest pushed."""
        instance = self.instance
        origin = instance.instance_id
        entries = [("manifest_remap",
                    {"key": key, "version": version,
                     "remap": {str(idx): iid
                               for idx, iid in sorted(delta.items())},
                     "last_modified": lm, "origin": origin},
                    BATCH_ENTRY_SIZE)
                   for key, version, delta, lm in remaps]
        calls = []
        for iid, peer in ring[1:]:
            if peer is None or not alive.get(iid):
                continue
            call = instance.node.call_batch(peer.node, list(entries))
            call.defuse()
            calls.append((peer.node, call))
        for peer_node, call in calls:
            try:
                results = yield call
            except Exception:
                self._m_push_failed.inc()
                continue
            for (key, version, delta, lm), entry in zip(remaps, results):
                if entry.get("ok"):
                    res = entry.get("result") or {}
                    if res.get("applied") or res.get("reason") == "superseded":
                        continue
                # Fallback: the peer is missing this manifest version (or
                # failed oddly) — push the full rewritten manifest.
                try:
                    data, _, _ = yield from instance.read_version(
                        key, version, run_rules=False)
                except Exception:
                    continue
                margs = {"key": key, "version": version,
                         "last_modified": lm, "origin": origin,
                         "data": data}
                try:
                    results2 = yield instance.node.call_batch(
                        peer_node,
                        [("replica_update", margs, len(data) + 512)])
                    if results2[0].get("ok"):
                        self._m_bytes.inc(len(data))
                    else:
                        self._m_push_failed.inc()
                except Exception:
                    self._m_push_failed.inc()
