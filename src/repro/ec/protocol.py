"""Erasure-coded redundancy as a consistency protocol.

A put under :class:`ECProtocol` does not replicate the whole object.  It
encodes the payload into ``n = k + m`` fragments (:mod:`repro.ec.codec`),
stores each fragment as a first-class object ``{key}#ecf{i}`` on a
distinct Tiera instance, and records the fragment map in a small JSON
*manifest* stored under the logical key itself.  The manifest is
broadcast to every peer, so any instance can coordinate a read: fetch the
``k`` nearest fragments, decode, done.  When a fragment holder is down
the read degrades gracefully — further holders are tried and the payload
is reconstructed from any ``k`` survivors.

Replication is the ``k = 1`` point of the same design: ``EC(1, m)`` keeps
``m + 1`` full copies and never needs reconstruction, so one protocol
serves both redundancy shapes and the
:class:`~repro.ec.optimizer.RedundancyOptimizer` can move objects between
them per key-class.

Fan-out rides the PR-5 batch data plane (``call_batch``): one envelope
per holder carrying that holder's fragment, then one manifest entry per
peer.  A put is acknowledged once at least ``min(n, k + 1)`` fragments
landed — enough to both read the object and survive one more fault —
and holders that were down at write time get their fragments substituted
onto other live instances (a *degraded write*), with the manifest
rewritten to match.  Lost fragments are re-established in the background
by :class:`~repro.ec.repair.ECRepairer`.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Generator, Optional

from repro.core.consistency.base import GlobalProtocol, ProtocolError
from repro.ec.codec import Codec
from repro.obs.api import get_obs
from repro.obs.trace import NULL_SPAN
from repro.storage.backend import ObjectMissingError

#: manifests are JSON objects whose serialization starts with this tag
MANIFEST_MAGIC = b'{"ec": 1'

#: separator between a logical key and its fragment index
FRAGMENT_SEP = "#ecf"


def fragment_key(key: str, index: int) -> str:
    return f"{key}{FRAGMENT_SEP}{index}"


def is_fragment_key(key: str) -> bool:
    return FRAGMENT_SEP in key


def encode_manifest(k: int, m: int, size: int,
                    frags: dict[int, str]) -> bytes:
    """Serialize a fragment map; deterministic byte-for-byte."""
    doc = {"ec": 1, "k": k, "m": m, "size": size,
           "frags": {str(i): iid for i, iid in sorted(frags.items())}}
    return json.dumps(doc, sort_keys=True).encode()


def decode_manifest(data: Optional[bytes]) -> Optional[dict]:
    """Parse a manifest; None for anything that is not one (plain bytes
    preloaded under the key, or an unreadable payload)."""
    if data is None or not data.startswith(MANIFEST_MAGIC):
        return None
    doc = json.loads(data.decode())
    doc["frags"] = {int(i): iid for i, iid in doc["frags"].items()}
    return doc


class ECProtocol(GlobalProtocol):
    """Fragmented writes, nearest-k reads, LWW fragment merge."""

    name = "ec"

    def __init__(self, spec):
        from repro.ec.repair import ECRepairer  # cycle: repair uses helpers
        self.spec = spec
        self._repairer_cls = ECRepairer
        self._repairers: dict[str, object] = {}
        #: per-key-class (prefix) scheme overrides, longest prefix wins.
        self._overrides: dict[str, tuple[int, int]] = {
            prefix: (k, m) for prefix, k, m in spec.overrides}
        self._metrics = None

    # -- schemes ----------------------------------------------------------
    def set_scheme(self, prefix: str, k: int, m: int) -> None:
        """Route keys starting with ``prefix`` to EC(k, m) from now on.

        Applies to new writes only; existing objects keep the scheme
        recorded in their manifest until rewritten.
        """
        if k < 1 or m < 0 or k + m > 255:
            raise ValueError(f"invalid scheme k={k} m={m}")
        self._overrides[prefix] = (k, m)

    def scheme_for(self, key: str) -> tuple[int, int]:
        best = None
        for prefix, scheme in self._overrides.items():
            if key.startswith(prefix) and (best is None
                                           or len(prefix) > len(best[0])):
                best = (prefix, scheme)
        if best is not None:
            return best[1]
        return (self.spec.k, self.spec.m)

    # -- lifecycle --------------------------------------------------------
    def attach(self, instance) -> None:
        if self._metrics is None:
            metrics = get_obs(instance.sim).metrics
            self._metrics = {
                "puts": metrics.counter("ec.puts"),
                "gets": metrics.counter("ec.gets"),
                "fragments_written": metrics.counter("ec.fragments_written"),
                "degraded_writes": metrics.counter("ec.degraded_writes"),
                "degraded_reads": metrics.counter("ec.degraded_reads"),
                "manifest_fallbacks": metrics.counter(
                    "ec.manifest_fallbacks"),
                "manifest_push_failures": metrics.counter(
                    "ec.manifest_push_failures"),
            }
        if self.spec.repair_interval is not None:
            repairer = self._repairer_cls(
                instance, self, self.spec.repair_interval,
                concurrency=getattr(self.spec, "repair_concurrency", 1))
            self._repairers[instance.instance_id] = repairer
            repairer.start()

    def detach(self, instance) -> None:
        repairer = self._repairers.pop(instance.instance_id, None)
        if repairer is not None:
            repairer.stop()

    def repairer(self, instance_id: str):
        """The repair loop attached for ``instance_id`` (None if absent)."""
        return self._repairers.get(instance_id)

    def _count(self, name: str, value: int = 1) -> None:
        if self._metrics is not None:
            self._metrics[name].inc(value)

    # -- topology helpers -------------------------------------------------
    def ring(self, instance) -> list[tuple[str, object]]:
        """(instance_id, peer_ref_or_None) nearest-first, self at rank 0.

        Order is deterministic: one-way latency, ties broken by id.
        """
        entries = [(-1.0, instance.instance_id, None)]
        for iid, peer in instance.peers.items():
            lat = instance.network.oneway_latency(instance.host,
                                                  peer.node.host)
            entries.append((lat, iid, peer))
        entries.sort(key=lambda e: (e[0], e[1]))
        return [(iid, peer) for _, iid, peer in entries]

    # -- put --------------------------------------------------------------
    def on_put(self, instance, key: str, data: bytes, tags=(),
               src: str = "app") -> Generator:
        tracer = get_obs(instance.sim).tracer
        span = (tracer.span("ec:put", cat="ec",
                            component=instance.instance_id, key=key)
                if tracer.enabled else NULL_SPAN)
        with span:
            result = yield from self._put(instance, key, data, tags)
        return result

    def _put(self, instance, key: str, data: bytes, tags) -> Generator:
        k, m = self.scheme_for(key)
        n = k + m
        ring = self.ring(instance)
        if len(ring) < n:
            raise ProtocolError(
                f"EC({k},{m}) needs {n} instances, group has {len(ring)}")
        holders = ring[:n]
        frag_map = {i: iid for i, (iid, _) in enumerate(holders)}

        # The manifest put reserves the logical version atomically.
        version = yield from instance.local_put(
            key, encode_manifest(k, m, len(data), frag_map), tags=tags)
        meta = instance.meta.get_record(key).versions[version]
        lm = meta.last_modified
        fragments = Codec.encode(data, k, n)

        # Fan the fragments out, one batched envelope per remote holder;
        # the local fragment is stored in-line.
        landed: set[int] = set()
        failed: list[int] = []
        calls = []
        for idx, (iid, peer) in enumerate(holders):
            if peer is None:
                yield from instance.local_put(
                    fragment_key(key, idx), fragments[idx], version=version,
                    origin=instance.instance_id, last_modified=lm)
                landed.add(idx)
                continue
            call = instance.node.call_batch(
                peer.node, [self._frag_entry(instance, key, idx,
                                             fragments[idx], version, lm)])
            call.defuse()
            calls.append((idx, call))
        for idx, call in calls:
            try:
                results = yield call
                if results[0].get("ok"):
                    landed.add(idx)
                else:
                    failed.append(idx)
            except Exception:
                failed.append(idx)

        # Degraded write: substitute unreachable holders with further live
        # ring members so the full fragment count is still established.
        spares = deque((iid, peer) for iid, peer in ring[n:]
                       if iid not in frag_map.values())
        substituted = False
        for idx in list(failed):
            while spares:
                iid, peer = spares.popleft()
                try:
                    results = yield instance.node.call_batch(
                        peer.node,
                        [self._frag_entry(instance, key, idx,
                                          fragments[idx], version, lm)])
                except Exception:
                    continue
                if results[0].get("ok"):
                    frag_map[idx] = iid
                    landed.add(idx)
                    failed.remove(idx)
                    substituted = True
                    break

        ack_floor = min(n, k + 1)
        if len(landed) < ack_floor:
            raise ProtocolError(
                f"EC put of {key!r} landed {len(landed)}/{n} fragments, "
                f"needs {ack_floor}")

        # Drop unreachable slots from the manifest so readers and the
        # repairer know exactly which fragments exist and where.
        for idx in failed:
            frag_map.pop(idx, None)
        manifest = encode_manifest(k, m, len(data), frag_map)
        if substituted or failed:
            lm = instance.sim.now
            yield from instance.purge_version(key, version)
            yield from instance.local_put(key, manifest, version=version,
                                          origin=instance.instance_id,
                                          last_modified=lm)
            self._count("degraded_writes")

        # Every peer gets the manifest — that is what lets any instance
        # coordinate a read.  Push failures are tolerated: the get-path
        # fallback and the repairer re-establish missing manifests.
        margs = {"key": key, "version": version, "last_modified": lm,
                 "origin": instance.instance_id, "data": manifest}
        mcalls = []
        for iid, peer in ring[1:]:
            call = instance.node.call_batch(
                peer.node,
                [("replica_update", margs, len(manifest) + 512)])
            call.defuse()
            mcalls.append(call)
        for call in mcalls:
            try:
                results = yield call
                if not results[0].get("ok"):
                    self._count("manifest_push_failures")
            except Exception:
                self._count("manifest_push_failures")

        self._count("puts")
        self._count("fragments_written", len(landed))
        return {"version": version, "region": instance.region,
                "consistency": self.name, "scheme": (k, m),
                "fragments": len(landed), "degraded": bool(substituted or failed)}

    @staticmethod
    def _frag_entry(instance, key: str, idx: int, fragment: bytes,
                    version: int, lm: float) -> tuple:
        args = {"key": fragment_key(key, idx), "version": version,
                "last_modified": lm, "origin": instance.instance_id,
                "data": fragment}
        return ("replica_update", args, len(fragment) + 512)

    # -- get --------------------------------------------------------------
    def on_get(self, instance, key: str,
               version: Optional[int] = None) -> Generator:
        tracer = get_obs(instance.sim).tracer
        span = (tracer.span("ec:get", cat="ec",
                            component=instance.instance_id, key=key)
                if tracer.enabled else NULL_SPAN)
        with span:
            result = yield from self._get(instance, key, version)
        return result

    def _get(self, instance, key: str,
             version: Optional[int]) -> Generator:
        try:
            data, meta, record = yield from instance.read_version(key,
                                                                  version)
            mversion, latest = meta.version, record.latest_version
        except ObjectMissingError:
            # No readable local manifest (fresh instance, or wiped by a
            # crash): fetch it from the nearest peer and install it.
            data, mversion, latest = yield from self._manifest_fallback(
                instance, key, version)
        manifest = decode_manifest(data)
        if manifest is None:
            # Plain object (e.g. preloaded fixture) — serve it as-is.
            return {"data": data, "version": mversion,
                    "latest_local": latest}

        k, m, size = manifest["k"], manifest["m"], manifest["size"]
        n = k + m
        frag_map = manifest["frags"]
        ring = self.ring(instance)
        rank = {iid: pos for pos, (iid, _) in enumerate(ring)}
        peer_by_id = dict(ring)
        order = sorted(frag_map.items(),
                       key=lambda kv: (rank.get(kv[1], len(rank)), kv[0]))

        collected: dict[int, bytes] = {}
        degraded = False
        cursor = 0
        while len(collected) < k and cursor < len(order):
            want = k - len(collected)
            wave = order[cursor:cursor + want]
            cursor += len(wave)
            calls = []
            for idx, iid in wave:
                peer = peer_by_id.get(iid)
                if iid == instance.instance_id:
                    try:
                        frag, _, _ = yield from instance.read_version(
                            fragment_key(key, idx), mversion,
                            run_rules=False)
                        collected[idx] = frag
                    except Exception:
                        degraded = True
                    continue
                if peer is None:
                    degraded = True
                    continue
                call = instance.node.call(
                    peer.node, "peer_get",
                    {"key": fragment_key(key, idx), "version": mversion},
                    reply_size=Codec.fragment_length(size, k) + 512)
                call.defuse()
                calls.append((idx, call))
            for idx, call in calls:
                try:
                    res = yield call
                    collected[idx] = res["data"]
                except Exception:
                    degraded = True
        if len(collected) < k:
            raise ProtocolError(
                f"EC get of {key!r} v{mversion}: only {len(collected)} of "
                f"{k} required fragments reachable")
        value = Codec.decode(collected, k, n, size)
        self._count("gets")
        if degraded:
            self._count("degraded_reads")
        return {"data": value, "version": mversion, "latest_local": latest,
                "degraded": degraded}

    def _manifest_fallback(self, instance, key: str,
                           version: Optional[int]) -> Generator:
        self._count("manifest_fallbacks")
        last_error = None
        for iid, peer in self.ring(instance)[1:]:
            call = instance.node.call(peer.node, "peer_get",
                                      {"key": key, "version": version})
            call.defuse()
            try:
                res = yield call
            except Exception as exc:
                last_error = exc
                continue
            # Install the fetched manifest locally so later reads are
            # coordinated without a WAN hop.  A lingering unreadable local
            # version (volatile tier wiped by a crash) is purged first —
            # LWW would otherwise reject the same-version reinstall.
            record = instance.meta.get_record(key)
            if record is not None and record.has_version(res["version"]):
                yield from instance.purge_version(key, res["version"])
            yield from instance.local_put(
                key, res["data"], version=res["version"],
                origin=res.get("origin", iid),
                last_modified=res["last_modified"])
            return res["data"], res["version"], res["latest_local"]
        raise ObjectMissingError(
            f"{instance.instance_id}: no reachable manifest for {key!r}"
        ) from last_error

    # -- repair data plane -------------------------------------------------
    def on_reconstruct_fragment(self, instance, args: dict) -> Generator:
        """Holder-local reconstruction: rebuild fragment ``index`` *here*.

        The repair leader names the surviving ``sources``; this instance
        pulls only the fragments it does not already hold (nearest-first,
        first wave in parallel), runs the codec's target-row
        :meth:`~repro.ec.codec.Codec.rebuild`, and installs the result
        locally — the fragment bytes never transit the leader.  Refuses
        with ``superseded`` when a racing write already advanced the
        manifest past ``version``, so a slow repair cannot resurrect a
        stale fragment.
        """
        key, version = args["key"], args["version"]
        k, m, size = args["k"], args["m"], args["size"]
        index = args["index"]
        n = k + m
        record = instance.meta.get_record(key)
        if record is not None and record.latest_version > version:
            return {"ok": False, "reason": "superseded"}

        fraglen = Codec.fragment_length(size, k)
        available: dict[int, bytes] = {}
        pulled = 0
        remote: list[tuple[int, str]] = []
        for idx, holder in args["sources"]:
            idx = int(idx)
            if idx == index:
                continue
            if holder == instance.instance_id:
                try:
                    frag, _, _ = yield from instance.read_version(
                        fragment_key(key, idx), version, run_rules=False)
                    available[idx] = frag
                except Exception:
                    pass
            else:
                remote.append((idx, holder))

        rank = {iid: pos for pos, (iid, _) in enumerate(self.ring(instance))}
        remote.sort(key=lambda e: (rank.get(e[1], len(rank)), e[0]))
        need = max(k - len(available), 0)
        calls = []
        for idx, holder in remote[:need]:
            peer = instance.peers.get(holder)
            if peer is None:
                continue
            call = instance.node.call(
                peer.node, "peer_get",
                {"key": fragment_key(key, idx), "version": version},
                reply_size=fraglen + 512)
            call.defuse()
            calls.append((idx, call))
        for idx, call in calls:
            try:
                res = yield call
                available[idx] = res["data"]
                pulled += len(res["data"])
            except Exception:
                continue
        cursor = need
        while len(available) < k and cursor < len(remote):
            idx, holder = remote[cursor]
            cursor += 1
            peer = instance.peers.get(holder)
            if peer is None or idx in available:
                continue
            try:
                res = yield instance.node.call(
                    peer.node, "peer_get",
                    {"key": fragment_key(key, idx), "version": version},
                    reply_size=fraglen + 512)
                available[idx] = res["data"]
                pulled += len(res["data"])
            except Exception:
                continue
        if len(available) < k:
            return {"ok": False, "reason": "unrepairable", "pulled": pulled}

        frag = Codec.rebuild(available, k, n, size, index)
        record = instance.meta.get_record(key)
        if record is not None and record.latest_version > version:
            return {"ok": False, "reason": "superseded", "pulled": pulled}
        fkey = fragment_key(key, index)
        frecord = instance.meta.get_record(fkey)
        if frecord is not None and frecord.has_version(version):
            yield from instance.purge_version(fkey, version)
        yield from instance.local_put(
            fkey, frag, version=version,
            origin=args.get("origin", instance.instance_id),
            last_modified=args["last_modified"])
        return {"ok": True, "pulled": pulled,
                "instance": instance.instance_id}

    def on_manifest_remap(self, instance, args: dict) -> Generator:
        """Apply a fragment-map delta to the local manifest copy.

        The parallel repairer broadcasts ``{index: new_holder}`` deltas
        (a few tens of bytes each, batched per peer) instead of one full
        manifest per object per peer.  Applies only to the exact
        ``version`` the leader repaired; anything else is refused with a
        reason so the leader can fall back to a full manifest push —
        except ``superseded``, where the stale manifest must stay dead.
        """
        key, version = args["key"], args["version"]
        record = instance.meta.get_record(key)
        if record is None or not record.has_version(version):
            return {"applied": False, "reason": "no-manifest"}
        if record.latest_version > version:
            return {"applied": False, "reason": "superseded"}
        try:
            data, _, _ = yield from instance.read_version(
                key, version, run_rules=False)
        except ObjectMissingError:
            return {"applied": False, "reason": "unreadable"}
        manifest = decode_manifest(data)
        if manifest is None:
            return {"applied": False, "reason": "not-manifest"}
        frag_map = dict(manifest["frags"])
        for idx, iid in args["remap"].items():
            frag_map[int(idx)] = iid
        manifest_bytes = encode_manifest(manifest["k"], manifest["m"],
                                         manifest["size"], frag_map)
        yield from instance.purge_version(key, version)
        yield from instance.local_put(
            key, manifest_bytes, version=version,
            origin=args.get("origin", instance.instance_id),
            last_modified=args["last_modified"])
        return {"applied": True}

    # -- remove -----------------------------------------------------------
    def on_remove(self, instance, key: str,
                  version: Optional[int] = None,
                  src: str = "app") -> Generator:
        frag_keys: set[str] = set()
        record = instance.meta.get_record(key)
        if record is not None:
            victims = ([version] if version is not None
                       else record.version_list())
            for v in victims:
                if not record.has_version(v):
                    continue
                try:
                    data, _, _ = yield from instance.read_version(
                        key, v, run_rules=False)
                except ObjectMissingError:
                    data = None
                manifest = decode_manifest(data)
                if manifest is not None:
                    total = manifest["k"] + manifest["m"]
                    frag_keys.update(fragment_key(key, i)
                                     for i in range(total))
        removed = yield from instance.local_remove(key, version)
        for fk in sorted(frag_keys):
            yield from instance.local_remove(fk, version)
        entries = [("replica_remove", {"key": key, "version": version}, 256)]
        entries += [("replica_remove", {"key": fk, "version": version}, 256)
                    for fk in sorted(frag_keys)]
        for iid, peer in self.ring(instance)[1:]:
            instance.node.send_oneway_batch(peer.node, entries)
        return {"removed": removed}
