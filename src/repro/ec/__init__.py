"""Erasure-coded redundancy plane (replication generalized to EC(k, m)).

Three layers:

* :mod:`repro.ec.codec` — pure GF(256) systematic Reed-Solomon codec:
  any k of k+m fragments reconstruct the object.
* :mod:`repro.ec.protocol` / :mod:`repro.ec.repair` — fragments as
  first-class Tiera objects with a replicated JSON manifest, degraded
  reads/writes around down hosts, and background fragment rebuild.
* :mod:`repro.ec.optimizer` — per-object replication-vs-EC(k, m) and
  site selection by price-book cost under durability and latency budgets.

Enabled via ``GlobalPolicySpec(redundancy=RedundancySpec(...))``;
``redundancy=None`` (the default) constructs nothing.
"""

from repro.ec.codec import Codec
from repro.ec.optimizer import (RedundancyOptimizer, RedundancyPlan,
                                SchemeEstimate)
from repro.ec.protocol import (ECProtocol, decode_manifest, encode_manifest,
                               fragment_key, is_fragment_key)
from repro.ec.repair import ECRepairer

__all__ = [
    "Codec",
    "ECProtocol",
    "ECRepairer",
    "RedundancyOptimizer",
    "RedundancyPlan",
    "SchemeEstimate",
    "encode_manifest",
    "decode_manifest",
    "fragment_key",
    "is_fragment_key",
]
