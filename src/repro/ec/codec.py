"""Systematic Reed-Solomon-style erasure codec over GF(256).

``Codec.encode(data, k, n)`` splits ``data`` into ``k`` equal data shards
(zero-padded) and appends ``n - k`` parity shards; ``Codec.decode`` rebuilds
the original bytes from *any* ``k`` of the ``n`` fragments.  The generator
matrix is ``[I_k ; C]`` with ``C`` an (n-k) x k Cauchy matrix — every
square submatrix of a Cauchy matrix is nonsingular, so every k-subset of
rows of ``[I ; C]`` is invertible and the code is MDS: it tolerates the
loss of any ``n - k`` fragments.

Pure python, zero dependencies, and deterministic: the same
``(data, k, n)`` always produces byte-identical fragments, and decoding
uses the ``k`` smallest available fragment indices regardless of the order
fragments arrived in.  The inner loops ride ``bytes.translate`` (constant
GF multiplication as a 256-byte table) and big-int XOR, so a 1 MiB encode
is milliseconds, not seconds.

Replication is the degenerate code ``k = 1``: every fragment is a scalar
multiple of the whole payload and any single fragment decodes it — which
is how the redundancy plane expresses "3x replication" as EC(1, 3).
"""

from __future__ import annotations

#: GF(2^8) modulo the AES polynomial x^8 + x^4 + x^3 + x^2 + 1.
_PRIMITIVE = 0x11D

_EXP = [0] * 512
_LOG = [0] * 256
_x = 1
for _i in range(255):
    _EXP[_i] = _x
    _LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= _PRIMITIVE
for _i in range(255, 512):
    _EXP[_i] = _EXP[_i - 255]


def gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("no inverse of 0 in GF(256)")
    return _EXP[255 - _LOG[a]]


#: constant-multiplier translate tables, built on demand and cached
_MUL_TABLES: dict[int, bytes] = {}


def _mul_table(c: int) -> bytes:
    table = _MUL_TABLES.get(c)
    if table is None:
        table = bytes(gf_mul(c, b) for b in range(256))
        _MUL_TABLES[c] = table
    return table


def _scale(buf: bytes, c: int) -> bytes:
    """buf * c, element-wise over GF(256)."""
    if c == 0:
        return bytes(len(buf))
    if c == 1:
        return buf
    return buf.translate(_mul_table(c))


def _xor(a: bytes, b: bytes) -> bytes:
    """a ^ b element-wise (addition in GF(2^8))."""
    n = len(a)
    return (int.from_bytes(a, "little")
            ^ int.from_bytes(b, "little")).to_bytes(n, "little")


def parity_matrix(k: int, m: int) -> list[list[int]]:
    """The m x k Cauchy block: C[i][j] = 1 / (x_i + y_j) with x_i = i,
    y_j = m + j.  The two index sets are disjoint, so x_i ^ y_j != 0."""
    return [[gf_inv(i ^ (m + j)) for j in range(k)] for i in range(m)]


def _invert(matrix: list[list[int]]) -> list[list[int]]:
    """Invert a k x k matrix over GF(256) by Gauss-Jordan elimination."""
    k = len(matrix)
    aug = [list(row) + [1 if i == j else 0 for j in range(k)]
           for i, row in enumerate(matrix)]
    for col in range(k):
        pivot = next((r for r in range(col, k) if aug[r][col] != 0), None)
        if pivot is None:
            raise ValueError("singular decode matrix (duplicate fragments?)")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv = gf_inv(aug[col][col])
        aug[col] = [gf_mul(v, inv) for v in aug[col]]
        for r in range(k):
            if r == col or aug[r][col] == 0:
                continue
            factor = aug[r][col]
            aug[r] = [v ^ gf_mul(factor, p)
                      for v, p in zip(aug[r], aug[col])]
    return [row[k:] for row in aug]


#: cached inverted decode matrices keyed by ``(k, n, available-index
#: tuple)``.  Repair after a site crash decodes *many* objects under the
#: same erasure pattern, so the O(k^3) Gauss-Jordan runs once per
#: pattern instead of once per object.  Bounded: a pathological churn of
#: patterns clears the cache rather than growing it without limit.
_INV_CACHE: dict[tuple[int, int, tuple[int, ...]], list[list[int]]] = {}
_INV_CACHE_MAX = 1024

#: cache telemetry (read by tests and the repair benchmark)
_inv_cache_stats = {"hits": 0, "misses": 0}


def decode_matrix(k: int, n: int,
                  pick: tuple[int, ...]) -> list[list[int]]:
    """Inverse of the generator rows selected by ``pick``, cached.

    ``pick`` must be a sorted tuple of ``k`` distinct fragment indices in
    ``[0, n)`` — the fragments actually used for decoding.
    """
    key = (k, n, pick)
    inverse = _INV_CACHE.get(key)
    if inverse is None:
        _inv_cache_stats["misses"] += 1
        cauchy = parity_matrix(k, n - k)
        rows = [([1 if j == i else 0 for j in range(k)] if i < k
                 else cauchy[i - k]) for i in pick]
        inverse = _invert(rows)
        if len(_INV_CACHE) >= _INV_CACHE_MAX:
            _INV_CACHE.clear()
        _INV_CACHE[key] = inverse
    else:
        _inv_cache_stats["hits"] += 1
    return inverse


def _combine(rows: list[tuple[int, bytes]], length: int) -> bytes:
    """sum(coeff * frag) over GF(256) for (coeff, frag) pairs."""
    acc = bytes(length)
    for coeff, frag in rows:
        if coeff == 0:
            continue
        acc = _xor(acc, _scale(frag, coeff))
    return acc


def _validate(k: int, n: int) -> None:
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k} n={n}")
    if n > 255:
        raise ValueError(f"GF(256) supports at most 255 fragments, got {n}")


class Codec:
    """Stateless encode/decode entry points (all methods are static)."""

    @staticmethod
    def fragment_length(size: int, k: int) -> int:
        """Bytes per fragment for a ``size``-byte payload split ``k`` ways."""
        return (size + k - 1) // k

    @staticmethod
    def encode(data: bytes, k: int, n: int) -> list[bytes]:
        """Split ``data`` into ``n`` fragments, any ``k`` of which decode it.

        Fragments ``0..k-1`` are the (zero-padded) data shards; fragments
        ``k..n-1`` are Cauchy parity.  All fragments have equal length
        ``ceil(len(data) / k)``.
        """
        _validate(k, n)
        m = n - k
        length = Codec.fragment_length(len(data), k)
        padded = bytes(data).ljust(k * length, b"\x00")
        shards = [padded[i * length:(i + 1) * length] for i in range(k)]
        if m == 0:
            return shards
        cauchy = parity_matrix(k, m)
        parity = [_combine(list(zip(cauchy[i], shards)), length)
                  for i in range(m)]
        return shards + parity

    @staticmethod
    def decode(fragments: dict[int, bytes], k: int, n: int,
               size: int) -> bytes:
        """Rebuild the original ``size`` bytes from any >= k fragments.

        ``fragments`` maps fragment index -> fragment bytes.  Exactly the
        ``k`` smallest available indices are used, so the result does not
        depend on arrival order or on which extra fragments are present.
        """
        _validate(k, n)
        present = sorted(i for i in fragments if 0 <= i < n)
        if len(present) < k:
            raise ValueError(
                f"need {k} fragments to decode, have {len(present)}")
        pick = present[:k]
        length = Codec.fragment_length(size, k)
        for i in pick:
            if len(fragments[i]) != length:
                raise ValueError(
                    f"fragment {i} is {len(fragments[i])} bytes, "
                    f"expected {length}")
        if pick == list(range(k)):
            return b"".join(fragments[i] for i in pick)[:size]
        inverse = decode_matrix(k, n, tuple(pick))
        shards = [_combine([(inverse[j][c], fragments[pick[c]])
                            for c in range(k)], length)
                  for j in range(k)]
        return b"".join(shards)[:size]

    @staticmethod
    def rebuild(fragments: dict[int, bytes], k: int, n: int, size: int,
                missing: int) -> bytes:
        """Reconstruct one lost fragment from any ``k`` survivors.

        Target-row fast path: with ``g`` the missing fragment's generator
        row and ``A`` the selected survivor rows, the rebuilt fragment is
        ``(g · A⁻¹) · picked`` — one :func:`_combine` pass over ``k``
        fragments, instead of a full decode (``k`` combines) followed by
        a full re-encode (``n - k`` more).  ``A⁻¹`` rides the
        :func:`decode_matrix` cache, so repeated erasure patterns skip
        the O(k³) inversion entirely.
        """
        _validate(k, n)
        if not 0 <= missing < n:
            raise ValueError(f"missing index {missing} outside [0, {n})")
        present = sorted(i for i in fragments if 0 <= i < n and i != missing)
        if len(present) < k:
            raise ValueError(
                f"need {k} fragments to rebuild, have {len(present)}")
        pick = present[:k]
        length = Codec.fragment_length(size, k)
        for i in pick:
            if len(fragments[i]) != length:
                raise ValueError(
                    f"fragment {i} is {len(fragments[i])} bytes, "
                    f"expected {length}")
        inverse = decode_matrix(k, n, tuple(pick))
        if missing < k:
            coeffs = inverse[missing]
        else:
            g = parity_matrix(k, n - k)[missing - k]
            coeffs = [0] * k
            for i in range(k):
                gi = g[i]
                if gi == 0:
                    continue
                row = inverse[i]
                for j in range(k):
                    coeffs[j] ^= gf_mul(gi, row[j])
        return _combine([(coeffs[j], fragments[pick[j]])
                         for j in range(k)], length)
