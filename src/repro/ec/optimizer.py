"""Per-object redundancy choice: replication vs EC(k, m), and where.

The optimizer extends the paper's §5.3 cost arithmetic from "which tier"
to "which redundancy shape": for a given object size and access rate it
prices every candidate (k, m) scheme from the Table 4 price book —
storage byte-months for ``n/k`` expansion, request charges for ``n``
fragment puts and ``k`` fragment gets, inter-region egress for the
fragments that live away from the reader — and picks the cheapest scheme
that still clears a durability floor (fragments the object can lose) and
the read/write latency budgets implied by the RTT matrix.

It is deliberately pure: no simulator types, just sites, an RTT callable
and arithmetic, so it is equally usable offline (the frontier benchmark)
and online (fed by the workload monitor via :meth:`plan_for_monitor`).

Replication appears as the degenerate scheme ``k = 1`` — EC(1, 2) *is*
3x replication — so "replicate or encode" and "which (k, m)" collapse
into one argmin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.ec.codec import Codec
from repro.storage.cost import (monthly_storage_cost, network_cost,
                                request_cost)


@dataclass(frozen=True)
class SchemeEstimate:
    """Priced-out candidate: one (k, m) scheme at concrete sites."""

    k: int
    m: int
    sites: tuple[str, ...]          # chosen fragment sites, nearest-first
    storage_dollars: float          # $/month for n fragments
    request_dollars: float          # $/month for fragment puts + gets
    egress_dollars: float           # $/month moving remote fragments
    read_latency: float             # time to gather the k nearest fragments
    write_latency: float            # time to land the ack floor
    durability: int                 # fragment losses survived (= m)

    @property
    def n(self) -> int:
        return self.k + self.m

    @property
    def total_dollars(self) -> float:
        return (self.storage_dollars + self.request_dollars
                + self.egress_dollars)

    @property
    def overhead(self) -> float:
        """Stored-bytes expansion factor (n / k)."""
        return self.n / self.k


@dataclass(frozen=True)
class RedundancyPlan:
    """The optimizer's answer for one object or key-class."""

    chosen: SchemeEstimate
    rejected: tuple[SchemeEstimate, ...] = field(default=())

    @property
    def is_replication(self) -> bool:
        return self.chosen.k == 1


class RedundancyOptimizer:
    """Min-cost redundancy selection under durability/latency budgets."""

    def __init__(self, spec, sites: Sequence[str],
                 rtt: Callable[[str, str], float],
                 tier: str = "s3"):
        """``sites`` are candidate fragment regions; ``rtt(a, b)`` is the
        round-trip time between two of them (0 for a == b); ``tier`` keys
        the price book row fragments are stored on."""
        self.spec = spec
        self.sites = list(sites)
        self.rtt = rtt
        self.tier = tier

    # -- pricing one candidate --------------------------------------------
    def evaluate(self, k: int, m: int, size: int,
                 reads_per_month: float, writes_per_month: float,
                 reader_region: str) -> Optional[SchemeEstimate]:
        """Price EC(k, m) for an object read mostly from ``reader_region``.

        Returns None when the site set cannot host n distinct fragments.
        """
        n = k + m
        if n > len(self.sites):
            return None
        by_distance = sorted(
            self.sites,
            key=lambda s: (0.0 if s == reader_region
                           else self.rtt(reader_region, s), s))
        chosen = tuple(by_distance[:n])
        frag_bytes = Codec.fragment_length(size, k)
        storage = monthly_storage_cost(self.tier, n * frag_bytes)
        requests = request_cost(self.tier,
                                puts=round(writes_per_month * n),
                                gets=round(reads_per_month * k))
        # A read pulls the k nearest fragments; the ones not co-located
        # with the reader cross a region boundary.  A write ships all n.
        read_sites = chosen[:k]
        remote_read = sum(1 for s in read_sites if s != reader_region)
        remote_all = sum(1 for s in chosen if s != reader_region)
        egress = network_cost(
            (reads_per_month * remote_read
             + writes_per_month * remote_all) * frag_bytes, "inter_region")

        def lat(site: str) -> float:
            return (0.0 if site == reader_region
                    else self.rtt(reader_region, site))
        read_latency = max((lat(s) for s in read_sites), default=0.0)
        ack = min(n, k + 1)
        write_latency = max((lat(s) for s in chosen[:ack]), default=0.0)
        return SchemeEstimate(
            k=k, m=m, sites=chosen, storage_dollars=storage,
            request_dollars=requests, egress_dollars=egress,
            read_latency=read_latency, write_latency=write_latency,
            durability=m)

    # -- the argmin --------------------------------------------------------
    def choose(self, size: int, reads_per_month: float,
               writes_per_month: float,
               reader_region: str) -> RedundancyPlan:
        """Cheapest candidate meeting the floor and budgets.

        Candidates that miss the durability floor are discarded outright;
        if *no* candidate fits both latency budgets, the durable candidate
        with the lowest read latency wins (availability over dollars).
        """
        spec = self.spec
        estimates = []
        for k, m in spec.candidates:
            est = self.evaluate(k, m, size, reads_per_month,
                                writes_per_month, reader_region)
            if est is not None:
                estimates.append(est)
        if not estimates:
            raise ValueError(
                f"no (k, m) candidate fits {len(self.sites)} sites")
        durable = [e for e in estimates if e.durability >= spec.durability_floor]
        if not durable:
            raise ValueError(
                f"no candidate meets durability floor {spec.durability_floor}")
        feasible = [e for e in durable
                    if e.read_latency <= spec.read_budget
                    and e.write_latency <= spec.write_budget]
        pool = feasible or durable
        ranked = sorted(pool, key=lambda e: (e.total_dollars,
                                             e.read_latency, e.k, e.m))
        if not feasible:
            # Budgets are infeasible at this geometry: serve reads as fast
            # as durability allows rather than optimizing a broken bill.
            ranked = sorted(pool, key=lambda e: (e.read_latency,
                                                 e.total_dollars, e.k, e.m))
        chosen = ranked[0]
        rejected = tuple(e for e in estimates if e is not chosen)
        return RedundancyPlan(chosen=chosen, rejected=rejected)

    # -- workload-monitor feed --------------------------------------------
    def plan_for_monitor(self, monitor, size_bytes: int,
                         elapsed: float) -> RedundancyPlan:
        """Extrapolate a workload monitor window to monthly rates.

        ``monitor`` is a :class:`~repro.core.workload_monitor.WorkloadMonitor`
        (or anything with ``demand_by_region()`` and ``read_fraction()``);
        ``elapsed`` is the observation window in simulated seconds.
        """
        from repro.util.units import HOUR
        from repro.storage.cost import HOURS_PER_MONTH
        demand = monitor.demand_by_region()
        total_ops = sum(demand.values())
        if elapsed <= 0 or total_ops == 0:
            return self.choose(size_bytes, 0.0, 0.0,
                               reader_region=self.sites[0])
        scale = (HOURS_PER_MONTH * HOUR) / elapsed
        read_frac = monitor.read_fraction()
        reads = total_ops * read_frac * scale
        writes = total_ops * (1.0 - read_frac) * scale
        reader = max(sorted(demand), key=lambda r: demand[r])
        return self.choose(size_bytes, reads, writes, reader_region=reader)
